// Package core is the orchestration layer: it wires a hardware
// description, a partition strategy, and a workload into the
// deployment planner, the performance simulator, and the energy
// model, returning one consolidated report per run. The public root
// package mcudist re-exports this API.
package core

import (
	"fmt"

	"mcudist/internal/deploy"
	"mcudist/internal/energy"
	"mcudist/internal/hw"
	"mcudist/internal/model"
	"mcudist/internal/partition"
	"mcudist/internal/perfsim"
)

// System describes the multi-chip platform and distribution strategy.
type System struct {
	// HW is the hardware parameter set (hw.Siracusa() by default).
	HW hw.Params
	// Chips is the number of MCUs.
	Chips int
	// Strategy selects the distribution scheme (TensorParallel is the
	// paper's).
	Strategy partition.Strategy
	// Options tunes the deployment planner.
	Options deploy.Options
}

// DefaultSystem returns the paper's system with n chips.
func DefaultSystem(n int) System {
	return System{HW: hw.Siracusa(), Chips: n, Strategy: partition.TensorParallel}
}

// Workload describes what to run.
type Workload struct {
	Model model.Config
	Mode  model.Mode
	// SeqLen is the sequence length (context length in autoregressive
	// mode); zero selects the paper's value for the model and mode.
	SeqLen int
	// Batch is the decode micro-batch width in autoregressive mode:
	// how many independent sessions generate one token each in this
	// step, sharing every weight read, kernel launch, and collective
	// synchronization (the continuous-batching step shape of the fleet
	// simulator). Zero or one is the single-session step the paper
	// evaluates, byte-identical to the pre-batch simulator. Batch is
	// part of the workload shape, so each width is simulated exactly
	// once per process (and once per persistent store lifetime).
	Batch int
}

// ResolvedSeqLen returns the effective sequence length.
func (w Workload) ResolvedSeqLen() int {
	if w.SeqLen > 0 {
		return w.SeqLen
	}
	return model.PaperSeqLen(w.Model, w.Mode)
}

// ResolvedBatch returns the effective decode micro-batch width.
func (w Workload) ResolvedBatch() int {
	if w.Batch > 1 {
		return w.Batch
	}
	return 1
}

// Report is the consolidated outcome of one simulated forward pass.
type Report struct {
	System   System
	Workload Workload

	// Cycles is the total runtime in cluster cycles.
	Cycles float64
	// Seconds is the runtime in wall-clock seconds.
	Seconds float64
	// Breakdown attributes the runtime to compute / L2↔L1 / L3↔L2 /
	// chip-to-chip, the paper's Fig. 4 categories.
	Breakdown perfsim.Breakdown
	// Energy itemizes the analytical energy model.
	Energy energy.Report
	// EDP is the energy-delay product in joule-seconds.
	EDP float64
	// Tier is the weakest weight-placement tier across chips.
	Tier deploy.Tier
	// Syncs counts chip synchronizations (2 per block for the
	// paper's scheme).
	Syncs int
	// L3Bytes is total off-chip traffic; C2CBytes total link traffic.
	L3Bytes  int64
	C2CBytes int64
	// PerChip carries the raw simulator counters.
	PerChip []perfsim.ChipStats
	// ByClass splits the synchronization and link accounting per
	// synchronization class (which classes ran, on which topology,
	// with how much traffic) — the attribution axis for per-sync
	// collective plans.
	ByClass []perfsim.ClassStats
	// C2CEnergyByClass itemizes the chip-to-chip energy per
	// synchronization class; it sums to Energy.C2C for the collective
	// strategies.
	C2CEnergyByClass []energy.ClassEnergy
}

// Run plans, simulates, and evaluates one workload on one system.
func Run(sys System, wl Workload) (*Report, error) {
	if sys.Chips <= 0 {
		return nil, fmt.Errorf("core: chip count %d must be positive", sys.Chips)
	}
	if wl.Batch < 0 {
		return nil, fmt.Errorf("core: micro-batch width %d must be non-negative", wl.Batch)
	}
	if wl.Batch > 1 && wl.Mode != model.Autoregressive {
		return nil, fmt.Errorf("core: micro-batch width %d needs autoregressive mode (prompt batching is the sequence length)", wl.Batch)
	}
	plan, err := buildPlan(sys, wl.Model)
	if err != nil {
		return nil, err
	}
	s := wl.ResolvedSeqLen()
	d, err := deploy.NewBatched(plan, sys.HW, wl.Mode, s, wl.ResolvedBatch(), sys.Options)
	if err != nil {
		return nil, err
	}
	res, err := perfsim.Run(d)
	if err != nil {
		return nil, err
	}
	e := energy.FromResult(sys.HW, res)
	rep := &Report{
		System:    sys,
		Workload:  wl,
		Cycles:    res.TotalCycles,
		Seconds:   sys.HW.CyclesToSeconds(res.TotalCycles),
		Breakdown: res.Breakdown,
		Energy:    e,
		EDP:       e.Total() * sys.HW.CyclesToSeconds(res.TotalCycles),
		Tier:      d.WorstTier(),
		Syncs:     res.Syncs,
		C2CBytes:  res.TotalC2CBytes,
		PerChip:   res.PerChip,
		ByClass:   res.ByClass,

		C2CEnergyByClass: energy.C2CByClass(sys.HW, res),
	}
	for i := range res.PerChip {
		rep.L3Bytes += res.PerChip[i].L3Bytes
	}
	return rep, nil
}

// Lower runs just the deployment planner for a (system, workload)
// pair — no simulation — exposing the per-chip kernel sequences and
// memory-hierarchy tile plans. The tiling autotuner prices candidate
// tilings from this lowering's closed-form plan makespans instead of
// simulating them.
func Lower(sys System, wl Workload) (*deploy.Deployment, error) {
	if sys.Chips <= 0 {
		return nil, fmt.Errorf("core: chip count %d must be positive", sys.Chips)
	}
	plan, err := buildPlan(sys, wl.Model)
	if err != nil {
		return nil, err
	}
	return deploy.NewBatched(plan, sys.HW, wl.Mode, wl.ResolvedSeqLen(), wl.ResolvedBatch(), sys.Options)
}

func buildPlan(sys System, cfg model.Config) (*partition.Plan, error) {
	switch sys.Strategy {
	case partition.TensorParallel:
		return partition.NewTensorParallel(cfg, sys.Chips)
	case partition.Replicated:
		return partition.NewReplicated(cfg, sys.Chips)
	case partition.Pipeline:
		return partition.NewPipeline(cfg, sys.Chips)
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", sys.Strategy)
	}
}

// Sweep runs the workload across several chip counts on otherwise
// identical systems and returns reports in order. This is the serial
// reference path: internal/evalpool provides the concurrent, memoized
// equivalent (verified byte-identical against this function) and is
// what the figure generators and the public facade route through;
// core cannot depend on it without an import cycle.
func Sweep(base System, wl Workload, chipCounts []int) ([]*Report, error) {
	out := make([]*Report, 0, len(chipCounts))
	for _, n := range chipCounts {
		sys := base
		sys.Chips = n
		rep, err := Run(sys, wl)
		if err != nil {
			return nil, fmt.Errorf("core: %d chips: %w", n, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// Speedup returns base.Cycles / r.Cycles.
func Speedup(base, r *Report) float64 {
	return base.Cycles / r.Cycles
}
