package core

import (
	"reflect"
	"testing"

	"mcudist/internal/model"
)

// A zero / one micro-batch width must resolve to the exact
// pre-batch simulator: every golden number in the repo is pinned on
// that path.
func TestBatchDefaultIsSingleSession(t *testing.T) {
	sys := DefaultSystem(8)
	wl := Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	base, err := Run(sys, wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{0, 1} {
		wlB := wl
		wlB.Batch = b
		got, err := Run(sys, wlB)
		if err != nil {
			t.Fatal(err)
		}
		// The Workload echo differs by construction; everything the
		// simulator computed must be bit-identical.
		got.Workload = base.Workload
		if !reflect.DeepEqual(got, base) {
			t.Errorf("Batch=%d diverged from the single-session path", b)
		}
	}
}

// Continuous batching must amortize: a decode micro-batch of width B
// costs strictly less than B single-token steps (shared weight reads,
// kernel setup, and per-hop link setup), while still costing more
// than one single-token step.
func TestBatchAmortizesDecodeStep(t *testing.T) {
	sys := DefaultSystem(8)
	wl := Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive, SeqLen: 128}
	single, err := Run(sys, wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{2, 4, 8} {
		wlB := wl
		wlB.Batch = b
		batched, err := Run(sys, wlB)
		if err != nil {
			t.Fatal(err)
		}
		if batched.Cycles <= single.Cycles {
			t.Errorf("Batch=%d: %g cycles not above the single step's %g", b, batched.Cycles, single.Cycles)
		}
		if batched.Cycles >= float64(b)*single.Cycles {
			t.Errorf("Batch=%d: %g cycles does not amortize %d x %g", b, batched.Cycles, b, single.Cycles)
		}
		if batched.Energy.Total() >= float64(b)*single.Energy.Total() {
			t.Errorf("Batch=%d: energy %g J does not amortize %d x %g J", b, batched.Energy.Total(), b, single.Energy.Total())
		}
	}
}

// Batch widths are a decode concept; prompt mode already batches over
// the sequence dimension, and negative widths are nonsense.
func TestBatchValidation(t *testing.T) {
	sys := DefaultSystem(8)
	if _, err := Run(sys, Workload{Model: model.TinyLlama42M(), Mode: model.Prompt, Batch: 4}); err == nil {
		t.Error("prompt-mode batch accepted")
	}
	if _, err := Run(sys, Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive, Batch: -1}); err == nil {
		t.Error("negative batch accepted")
	}
}
