package core

import (
	"math"
	"testing"

	"mcudist/internal/deploy"
	"mcudist/internal/model"
	"mcudist/internal/partition"
)

func TestRunDefaultSystem(t *testing.T) {
	rep, err := Run(DefaultSystem(8), Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles <= 0 || rep.Seconds <= 0 {
		t.Fatal("no runtime")
	}
	if math.Abs(rep.Seconds-rep.Cycles/500e6) > 1e-12 {
		t.Fatal("seconds/cycles inconsistent with 500 MHz")
	}
	if rep.Energy.Total() <= 0 {
		t.Fatal("no energy")
	}
	if math.Abs(rep.EDP-rep.Energy.Total()*rep.Seconds) > 1e-15 {
		t.Fatal("EDP inconsistent")
	}
	if rep.Tier != deploy.TierDoubleBuffered {
		t.Fatalf("tier %v, want double-buffered", rep.Tier)
	}
	if rep.Syncs != 16 {
		t.Fatalf("syncs = %d, want 16", rep.Syncs)
	}
	if len(rep.PerChip) != 8 {
		t.Fatalf("per-chip stats = %d", len(rep.PerChip))
	}
}

func TestWorkloadDefaultSeqLens(t *testing.T) {
	wl := Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}
	if wl.ResolvedSeqLen() != 128 {
		t.Fatalf("AR default = %d", wl.ResolvedSeqLen())
	}
	wl.Mode = model.Prompt
	if wl.ResolvedSeqLen() != 16 {
		t.Fatalf("prompt default = %d", wl.ResolvedSeqLen())
	}
	wl.SeqLen = 99
	if wl.ResolvedSeqLen() != 99 {
		t.Fatal("explicit seq len ignored")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(DefaultSystem(0), Workload{Model: model.TinyLlama42M()}); err == nil {
		t.Error("zero chips accepted")
	}
	if _, err := Run(DefaultSystem(9), Workload{Model: model.TinyLlama42M()}); err == nil {
		t.Error("9 chips on 8 heads accepted")
	}
	sys := DefaultSystem(4)
	sys.Strategy = partition.Strategy(42)
	if _, err := Run(sys, Workload{Model: model.TinyLlama42M()}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := Run(DefaultSystem(4), Workload{Model: model.MobileBERT512(), Mode: model.Autoregressive}); err == nil {
		t.Error("autoregressive encoder accepted")
	}
}

func TestSweepOrdering(t *testing.T) {
	reports, err := Sweep(DefaultSystem(1), Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive}, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].Cycles >= reports[i-1].Cycles {
			t.Errorf("runtime did not drop at step %d", i)
		}
	}
	if s := Speedup(reports[0], reports[3]); s <= 8 {
		t.Errorf("speedup %g not super-linear", s)
	}
}

func TestBaselineStrategiesRun(t *testing.T) {
	for _, strat := range []partition.Strategy{partition.Replicated, partition.Pipeline} {
		sys := DefaultSystem(4)
		sys.Strategy = strat
		rep, err := Run(sys, Workload{Model: model.TinyLlama42M(), Mode: model.Prompt})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if rep.Cycles <= 0 {
			t.Fatalf("%v: no runtime", strat)
		}
	}
}

func TestL3BytesAggregated(t *testing.T) {
	rep, err := Run(DefaultSystem(8), Workload{Model: model.TinyLlama42M(), Mode: model.Autoregressive})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range rep.PerChip {
		sum += c.L3Bytes
	}
	if rep.L3Bytes != sum {
		t.Fatalf("L3Bytes %d != per-chip sum %d", rep.L3Bytes, sum)
	}
	// Double-buffered: the whole model crosses L3 once per forward.
	if rep.L3Bytes != int64(model.TinyLlama42M().TotalWeightBytes()) {
		t.Fatalf("L3 bytes %d, want one model worth", rep.L3Bytes)
	}
}
