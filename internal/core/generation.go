package core

import (
	"fmt"

	"mcudist/internal/model"
)

// GenerationReport aggregates a full interactive session: one
// prompt-mode prefill followed by token-by-token autoregressive
// decoding against a growing context — the paper's two modes composed
// the way a deployed assistant uses them.
type GenerationReport struct {
	Prefill *Report
	// Steps holds one report per generated token (context grows by
	// one each step).
	Steps []*Report

	// Aggregates over prefill + all steps.
	TotalSeconds  float64
	TotalEnergyJ  float64
	TotalL3Bytes  int64
	TotalC2CBytes int64

	// TimeToFirstTokenSeconds is the prefill latency; per-token
	// decode latencies are in Steps.
	TimeToFirstTokenSeconds float64
	// TokensPerSecond is the steady-state decode rate (generated
	// tokens over decode time).
	TokensPerSecond float64
}

// RunGeneration simulates a session that ingests promptLen tokens and
// generates genTokens more. Decoder models only.
func RunGeneration(sys System, cfg model.Config, promptLen, genTokens int) (*GenerationReport, error) {
	if cfg.Arch != model.Decoder {
		return nil, fmt.Errorf("core: generation requires a decoder, %s is an %s", cfg.Name, cfg.Arch)
	}
	if promptLen <= 0 {
		return nil, fmt.Errorf("core: prompt length %d must be positive", promptLen)
	}
	if genTokens < 0 {
		return nil, fmt.Errorf("core: token count %d must be non-negative", genTokens)
	}

	g := &GenerationReport{}
	prefill, err := Run(sys, Workload{Model: cfg, Mode: model.Prompt, SeqLen: promptLen})
	if err != nil {
		return nil, fmt.Errorf("core: prefill: %w", err)
	}
	g.Prefill = prefill
	g.TimeToFirstTokenSeconds = prefill.Seconds
	accumulate(g, prefill)

	var decodeSeconds float64
	for i := 0; i < genTokens; i++ {
		ctx := promptLen + i + 1
		step, err := Run(sys, Workload{Model: cfg, Mode: model.Autoregressive, SeqLen: ctx})
		if err != nil {
			return nil, fmt.Errorf("core: token %d: %w", i, err)
		}
		g.Steps = append(g.Steps, step)
		decodeSeconds += step.Seconds
		accumulate(g, step)
	}
	if decodeSeconds > 0 {
		g.TokensPerSecond = float64(genTokens) / decodeSeconds
	}
	return g, nil
}

func accumulate(g *GenerationReport, r *Report) {
	g.TotalSeconds += r.Seconds
	g.TotalEnergyJ += r.Energy.Total()
	g.TotalL3Bytes += r.L3Bytes
	g.TotalC2CBytes += r.C2CBytes
}
