package core

import (
	"math"
	"testing"

	"mcudist/internal/model"
)

func TestRunGeneration(t *testing.T) {
	g, err := RunGeneration(DefaultSystem(8), model.TinyLlama42M(), 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Prefill == nil || len(g.Steps) != 4 {
		t.Fatalf("prefill=%v steps=%d", g.Prefill != nil, len(g.Steps))
	}
	if g.TimeToFirstTokenSeconds != g.Prefill.Seconds {
		t.Fatal("TTFT != prefill latency")
	}
	if g.TokensPerSecond <= 0 {
		t.Fatal("no decode rate")
	}
	var wantSeconds float64 = g.Prefill.Seconds
	var wantEnergy float64 = g.Prefill.Energy.Total()
	for _, s := range g.Steps {
		wantSeconds += s.Seconds
		wantEnergy += s.Energy.Total()
	}
	if math.Abs(g.TotalSeconds-wantSeconds) > 1e-12 {
		t.Fatal("total seconds mismatch")
	}
	if math.Abs(g.TotalEnergyJ-wantEnergy) > 1e-15 {
		t.Fatal("total energy mismatch")
	}
}

func TestGenerationContextGrows(t *testing.T) {
	g, err := RunGeneration(DefaultSystem(8), model.TinyLlama42M(), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range g.Steps {
		if got := s.Workload.SeqLen; got != 8+i+1 {
			t.Fatalf("step %d context %d, want %d", i, got, 8+i+1)
		}
	}
	// Later steps attend over longer contexts: monotone non-shrinking
	// cycle counts.
	for i := 1; i < len(g.Steps); i++ {
		if g.Steps[i].Cycles < g.Steps[i-1].Cycles {
			t.Fatalf("step %d faster than step %d despite longer context", i, i-1)
		}
	}
}

func TestGenerationValidation(t *testing.T) {
	if _, err := RunGeneration(DefaultSystem(4), model.MobileBERT512(), 8, 2); err == nil {
		t.Error("encoder generation accepted")
	}
	if _, err := RunGeneration(DefaultSystem(4), model.TinyLlama42M(), 0, 2); err == nil {
		t.Error("zero prompt accepted")
	}
	if _, err := RunGeneration(DefaultSystem(4), model.TinyLlama42M(), 8, -1); err == nil {
		t.Error("negative token count accepted")
	}
}

func TestGenerationZeroTokens(t *testing.T) {
	g, err := RunGeneration(DefaultSystem(8), model.TinyLlama42M(), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Steps) != 0 || g.TokensPerSecond != 0 {
		t.Fatal("zero-token generation should have no steps and no rate")
	}
	if g.TotalSeconds != g.Prefill.Seconds {
		t.Fatal("total should equal prefill")
	}
}

func TestGenerationGQAModel(t *testing.T) {
	g, err := RunGeneration(DefaultSystem(3), model.SmolLM135M(), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Steps) != 2 {
		t.Fatal("GQA generation incomplete")
	}
}
