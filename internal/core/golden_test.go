package core

import (
	"math"
	"testing"

	"mcudist/internal/collective"
	"mcudist/internal/hw"
	"mcudist/internal/model"
)

// golden pins the exact float64 bit patterns the simulator produced
// before the interconnect was refactored onto pluggable topology
// schedules (PR "pluggable interconnect topologies") and before the
// single hw.Link was replaced by the per-edge link model (PR
// "heterogeneous per-edge link model"). On the uniform network —
// today's default, the only profile that existed before — all four
// topologies have to reproduce these results bit for bit: the
// refactors are restructurings, not model changes. The ring and
// fully-connected rows were captured immediately before the link
// model changed, from the same commit the tree/star rows survived.
// Since the per-sync collective plan subsystem, every row runs twice:
// once with the run-wide topology selector (zero plan) and once as a
// uniform plan binding every synchronization class to the row's shape
// on a default platform — both must reproduce the same bits.
//
// If a later PR intentionally changes the cost model (kernels, deploy
// planner, energy constants), re-baseline these constants in that PR
// and say so in its description; an unexplained diff here means the
// collective schedule execution drifted.
type golden struct {
	name     string
	topology hw.Topology
	flatVia  bool // reach the star via the legacy GroupSize >= n route instead
	chips    int
	cfg      func() model.Config
	mode     model.Mode

	cycles, compute, l2l1, l3, c2c uint64 // math.Float64bits
	c2cBytes, l3Bytes              int64
	syncs                          int
	energy                         uint64
}

var goldens = []golden{
	{
		name: "tinyllama-ar-8", chips: 8, cfg: model.TinyLlama42M, mode: model.Autoregressive,
		cycles: 0x41193c0000000000, compute: 0x4100f80000000000, l2l1: 0x410b800000000000,
		l3: 0x0000000000000000, c2c: 0x40e8000000000000,
		c2cBytes: 114688, l3Bytes: 25165824, syncs: 16, energy: 0x3f65539da90f9e11,
	},
	{
		name: "tinyllama-prompt-8", chips: 8, cfg: model.TinyLlama42M, mode: model.Prompt,
		cycles: 0x41408f4000000000, compute: 0x4131d10000000000, l2l1: 0x411c360000000000,
		l3: 0x0000000000000000, c2c: 0x4120800000000000,
		c2cBytes: 1835008, l3Bytes: 25165824, syncs: 16, energy: 0x3f686db54407b227,
	},
	{
		name: "tinyllama-ar-1", chips: 1, cfg: model.TinyLlama42M, mode: model.Autoregressive,
		cycles: 0x41696e3c00000003, compute: 0x4120e1c000000000, l2l1: 0x4139690000000000,
		l3: 0x4165330000000002, c2c: 0x0000000000000000,
		c2cBytes: 0, l3Bytes: 27750400, syncs: 16, energy: 0x3f6749081c6bc689,
	},
	{
		name: "tinyllama-ar-3", chips: 3, cfg: model.TinyLlama42M, mode: model.Autoregressive,
		cycles: 0x41509ff3e6666667, compute: 0x410d7f0000000000, l2l1: 0x412208ac00000000,
		l3: 0x414ab5ccccccccce, c2c: 0x40d8000000000000,
		c2cBytes: 32768, l3Bytes: 25165824, syncs: 16, energy: 0x3f6536b9eed08544,
	},
	{
		name: "mobilebert-prompt-4", chips: 4, cfg: model.MobileBERT512, mode: model.Prompt,
		cycles: 0x4182b916a8000000, compute: 0x417e16c7ffffffec, l2l1: 0x4158651480000000,
		l3: 0x0000000000000000, c2c: 0x4134220300000140,
		c2cBytes: 19759104, l3Bytes: 18874368, syncs: 24, energy: 0x3f7d9bf13ebd9464,
	},
	{
		name: "scaled-prompt-64", chips: 64, cfg: model.TinyLlamaScaled64, mode: model.Prompt,
		cycles: 0x413ac3c000000000, compute: 0x41208d8000000000, l2l1: 0x4118740000000000,
		l3: 0x0000000000000000, c2c: 0x4128c00000000000,
		c2cBytes: 16515072, l3Bytes: 0, syncs: 16, energy: 0x3f62a2db93e551b2,
	},
	// The explicit star topology must reproduce the pre-refactor
	// flat-reduction ablation (GroupSize >= n) exactly.
	{
		name: "scaled-prompt-64-star", topology: hw.TopoStar, chips: 64,
		cfg: model.TinyLlamaScaled64, mode: model.Prompt,
		cycles: 0x414c372000000000, compute: 0x4139bb4000000000, l2l1: 0x413a930000000000,
		l3: 0x0000000000000000, c2c: 0x4110800000000000,
		c2cBytes: 16515072, l3Bytes: 0, syncs: 16, energy: 0x3f62a2db93e551aa,
	},
	// ... and so must the legacy GroupSize >= n spelling itself.
	{
		name: "scaled-prompt-64-flat-legacy", flatVia: true, chips: 64,
		cfg: model.TinyLlamaScaled64, mode: model.Prompt,
		cycles: 0x414c372000000000, compute: 0x4139bb4000000000, l2l1: 0x413a930000000000,
		l3: 0x0000000000000000, c2c: 0x4110800000000000,
		c2cBytes: 16515072, l3Bytes: 0, syncs: 16, energy: 0x3f62a2db93e551aa,
	},
	// Uniform-network results for the remaining topology shapes,
	// captured pre-refactor: the per-edge link model must leave every
	// shape bit-identical when all edges carry the one MIPI class.
	{
		name: "tinyllama-ar-8-ring", topology: hw.TopoRing, chips: 8,
		cfg: model.TinyLlama42M, mode: model.Autoregressive,
		cycles: 0x4117c5c000000000, compute: 0x40f8ab0000000000, l2l1: 0x410a760000000000,
		l3: 0x0000000000000000, c2c: 0x40f1800000000000,
		c2cBytes: 114688, l3Bytes: 25165824, syncs: 16, energy: 0x3f65539da90f9e11,
	},
	{
		name: "tinyllama-ar-8-fc", topology: hw.TopoFullyConnected, chips: 8,
		cfg: model.TinyLlama42M, mode: model.Autoregressive,
		cycles: 0x4118610000000000, compute: 0x41031a0000000000, l2l1: 0x410c280000000000,
		l3: 0x0000000000000000, c2c: 0x40c8000000000000,
		c2cBytes: 458752, l3Bytes: 25165824, syncs: 16, energy: 0x3f65bb6925452261,
	},
	{
		name: "tinyllama-prompt-8-ring", topology: hw.TopoRing, chips: 8,
		cfg: model.TinyLlama42M, mode: model.Prompt,
		cycles: 0x413809b000000000, compute: 0x412dba6000000000, l2l1: 0x4113320000000000,
		l3: 0x0000000000000000, c2c: 0x4111800000000000,
		c2cBytes: 1835008, l3Bytes: 25165824, syncs: 16, energy: 0x3f686db54407b227,
	},
	{
		name: "tinyllama-prompt-8-fc", topology: hw.TopoFullyConnected, chips: 8,
		cfg: model.TinyLlama42M, mode: model.Prompt,
		cycles: 0x413d09c000000000, compute: 0x4132c94000000000, l2l1: 0x4120610000000000,
		l3: 0x0000000000000000, c2c: 0x4100800000000000,
		c2cBytes: 7340032, l3Bytes: 25165824, syncs: 16, energy: 0x3f6dd79d76e971de,
	},
	{
		name: "scaled-prompt-64-ring", topology: hw.TopoRing, chips: 64,
		cfg: model.TinyLlamaScaled64, mode: model.Prompt,
		cycles: 0x4131669600000000, compute: 0x410c00b000000000, l2l1: 0x4100b40000000000,
		l3: 0x0000000000000000, c2c: 0x4127a00000000000,
		c2cBytes: 16515072, l3Bytes: 0, syncs: 16, energy: 0x3f62a2db93e551b3,
	},
	{
		name: "scaled-prompt-64-fc", topology: hw.TopoFullyConnected, chips: 64,
		cfg: model.TinyLlamaScaled64, mode: model.Prompt,
		cycles: 0x414b2f2000000000, compute: 0x4139bb4000000000, l2l1: 0x413a930000000000,
		l3: 0x0000000000000000, c2c: 0x4100800000000000,
		c2cBytes: 528482304, l3Bytes: 0, syncs: 16, energy: 0x3fae4d2ad2a7dd45,
	},
}

func TestGoldenTreeByteIdentical(t *testing.T) {
	// The default platform IS the explicit uniform-MIPI spelling: the
	// golden rows below therefore pin the uniform path of the
	// per-edge link model against the pre-refactor single hw.Link.
	if hw.Siracusa().Network != hw.UniformNetwork(hw.MIPI()) {
		t.Fatal("default network is not UniformNetwork(MIPI())")
	}
	for _, g := range goldens {
		check := func(t *testing.T, rep *Report) {
			t.Helper()
			bits := func(field string, got float64, want uint64) {
				if math.Float64bits(got) != want {
					t.Errorf("%s = %.17g (bits 0x%016x), want bits 0x%016x",
						field, got, math.Float64bits(got), want)
				}
			}
			bits("cycles", rep.Cycles, g.cycles)
			bits("breakdown.compute", rep.Breakdown.Compute, g.compute)
			bits("breakdown.l2l1", rep.Breakdown.L2L1, g.l2l1)
			bits("breakdown.l3", rep.Breakdown.L3, g.l3)
			bits("breakdown.c2c", rep.Breakdown.C2C, g.c2c)
			bits("energy", rep.Energy.Total(), g.energy)
			if rep.C2CBytes != g.c2cBytes {
				t.Errorf("c2c bytes = %d, want %d", rep.C2CBytes, g.c2cBytes)
			}
			if rep.L3Bytes != g.l3Bytes {
				t.Errorf("l3 bytes = %d, want %d", rep.L3Bytes, g.l3Bytes)
			}
			if rep.Syncs != g.syncs {
				t.Errorf("syncs = %d, want %d", rep.Syncs, g.syncs)
			}
		}
		t.Run(g.name, func(t *testing.T) {
			// The zero collective plan is the default here: these rows
			// also pin that an unset plan leaves the single-topology
			// path untouched.
			sys := DefaultSystem(g.chips)
			sys.HW.Topology = g.topology
			if g.flatVia {
				sys.HW.GroupSize = g.chips
			}
			rep, err := Run(sys, Workload{Model: g.cfg(), Mode: g.mode})
			if err != nil {
				t.Fatal(err)
			}
			check(t, rep)
		})
		t.Run(g.name+"-planned", func(t *testing.T) {
			// The same numbers must reproduce when the topology is
			// selected per synchronization class instead of run-wide:
			// a uniform collective plan binding every class to g's
			// shape, on an otherwise default (tree) platform, is the
			// same simulation — per-sync scheduling is a
			// restructuring, not a model change.
			sys := DefaultSystem(g.chips)
			if g.flatVia {
				sys.HW.GroupSize = g.chips
			}
			sys.Options.SyncPlan = collective.Uniform(g.topology)
			rep, err := Run(sys, Workload{Model: g.cfg(), Mode: g.mode})
			if err != nil {
				t.Fatal(err)
			}
			check(t, rep)
		})
	}
}
