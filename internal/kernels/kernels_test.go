package kernels

import (
	"testing"
	"testing/quick"

	"mcudist/internal/hw"
)

var int8Elem = Elem{Weight: 1, Act: 1, Acc: 4}

func TestLinearCountsMACsAndBytes(t *testing.T) {
	p := hw.Siracusa()
	c := Linear(p, 16, 512, 512, int8Elem)
	if c.MACs != 16*512*512 {
		t.Fatalf("MACs = %d", c.MACs)
	}
	if c.WeightBytes != 512*512 {
		t.Fatalf("weight bytes = %d", c.WeightBytes)
	}
	if c.ActInBytes != 16*512 || c.ActOutBytes != 16*512 {
		t.Fatalf("act bytes = %d/%d", c.ActInBytes, c.ActOutBytes)
	}
}

func TestLinearUtilizationReasonable(t *testing.T) {
	p := hw.Siracusa()
	// A large square GEMM should achieve decent utilization.
	c := Linear(p, 128, 512, 512, int8Elem)
	u := Utilization(p, c)
	if u < 0.5 || u > 1.0 {
		t.Fatalf("large GEMM utilization = %g, want in [0.5, 1]", u)
	}
}

func TestSmallKernelsLoseUtilization(t *testing.T) {
	p := hw.Siracusa()
	big := Utilization(p, Linear(p, 128, 512, 512, int8Elem))
	small := Utilization(p, Linear(p, 128, 512, 8, int8Elem))
	if small >= big {
		t.Fatalf("small kernel utilization %g >= big %g; sub-linear scaling lost", small, big)
	}
}

// The paper's observation: splitting a kernel N ways yields less than
// N× cycle reduction.
func TestKernelSplitIsSubLinear(t *testing.T) {
	p := hw.Siracusa()
	full := Linear(p, 268, 512, 512, int8Elem).Cycles
	quarter := Linear(p, 268, 512, 128, int8Elem).Cycles
	if quarter*4 <= full {
		t.Fatalf("4×quarter = %g <= full %g: splitting scaled super-linearly", quarter*4, full)
	}
	if quarter >= full {
		t.Fatalf("quarter kernel %g not faster than full %g", quarter, full)
	}
}

func TestGEMVParallelizesOverOutputs(t *testing.T) {
	p := hw.Siracusa()
	// M=1 GEMV must still use all cores (split over N).
	one := Linear(p, 1, 512, 512, int8Elem)
	peak := float64(p.PeakMACsPerCycle())
	minCycles := float64(one.MACs) / peak
	if one.Cycles < minCycles {
		t.Fatalf("GEMV cycles %g below physical minimum %g", one.Cycles, minCycles)
	}
	if one.Cycles > 4*minCycles {
		t.Fatalf("GEMV cycles %g more than 4× minimum %g: overhead model too heavy", one.Cycles, minCycles)
	}
}

func TestMatMulActHasNoWeightBytes(t *testing.T) {
	p := hw.Siracusa()
	c := MatMulAct(p, 1, 64, 128, int8Elem)
	if c.WeightBytes != 0 {
		t.Fatalf("attention matmul reported %d weight bytes", c.WeightBytes)
	}
	if c.ActInBytes != (64 + 64*128) {
		t.Fatalf("act in bytes = %d", c.ActInBytes)
	}
}

func TestCostAdd(t *testing.T) {
	p := hw.Siracusa()
	a := Linear(p, 1, 64, 64, int8Elem)
	b := Softmax(p, 1, 64, int8Elem)
	s := a.Add(b)
	if s.Cycles != a.Cycles+b.Cycles {
		t.Fatal("cycles did not add")
	}
	if s.MACs != a.MACs {
		t.Fatal("MACs changed")
	}
	if s.TotalL2L1Bytes() != a.TotalL2L1Bytes()+b.TotalL2L1Bytes() {
		t.Fatal("bytes did not add")
	}
}

func TestElementwiseKernelsScaleWithElems(t *testing.T) {
	p := hw.Siracusa()
	small := Softmax(p, 1, 128, int8Elem).Cycles
	big := Softmax(p, 16, 128, int8Elem).Cycles
	if big <= small {
		t.Fatal("softmax cost did not grow with rows")
	}
	setup := float64(p.Chip.KernelSetupCycles)
	// 16× the elements should cost no more than 16× the variable part.
	if (big - setup) > 16.5*(small-setup) {
		t.Fatalf("softmax scaling anomalous: %g vs %g", big, small)
	}
}

func TestReduceAddAndRequantBytes(t *testing.T) {
	p := hw.Siracusa()
	r := ReduceAdd(p, 16, 512, int8Elem)
	if r.ActInBytes != 2*16*512*4 || r.ActOutBytes != 16*512*4 {
		t.Fatalf("reduce-add bytes %d/%d", r.ActInBytes, r.ActOutBytes)
	}
	q := Requant(p, 16, 512, int8Elem)
	if q.ActInBytes != 16*512*4 || q.ActOutBytes != 16*512 {
		t.Fatalf("requant bytes %d/%d", q.ActInBytes, q.ActOutBytes)
	}
}

func TestKVAppendMovesBothKAndV(t *testing.T) {
	p := hw.Siracusa()
	c := KVAppend(p, 1, 64, int8Elem)
	if c.ActOutBytes != 2*64 {
		t.Fatalf("kv append bytes = %d, want 128", c.ActOutBytes)
	}
}

func TestDMATime(t *testing.T) {
	if got := DMATime(0, 8, 64, 0); got != 0 {
		t.Fatalf("zero bytes cost %g", got)
	}
	// 800 bytes at 8 B/cyc + one setup of 64.
	if got := DMATime(800, 8, 64, 0); got != 164 {
		t.Fatalf("DMA time = %g, want 164", got)
	}
	// Tiled: 3 tiles of ≤400 bytes → 3 setups.
	if got := DMATime(1000, 8, 64, 400); got != 125+3*64 {
		t.Fatalf("tiled DMA time = %g, want %g", got, 125.0+3*64)
	}
}

func TestRoPEAndGELUAndNormPositive(t *testing.T) {
	p := hw.Siracusa()
	for _, c := range []Cost{
		RoPE(p, 4, 64, int8Elem),
		GELU(p, 4, 512, int8Elem),
		Norm(p, 4, 512, int8Elem),
		ResidualAdd(p, 4, 512, int8Elem),
	} {
		if c.Cycles <= 0 {
			t.Errorf("%s has non-positive cycles", c.Name)
		}
		if c.MACs != 0 {
			t.Errorf("%s reports MACs", c.Name)
		}
	}
}

// Property: cycles are monotone in every GEMM dimension.
func TestPropertyLinearMonotone(t *testing.T) {
	p := hw.Siracusa()
	f := func(mRaw, kRaw, nRaw uint8) bool {
		m := 1 + int(mRaw)%64
		k := 1 + int(kRaw)%64
		n := 1 + int(nRaw)%64
		base := Linear(p, m, k, n, int8Elem).Cycles
		return Linear(p, m+1, k, n, int8Elem).Cycles >= base &&
			Linear(p, m, k+1, n, int8Elem).Cycles >= base &&
			Linear(p, m, k, n+1, int8Elem).Cycles >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization never exceeds 1 (no kernel beats peak HW).
func TestPropertyUtilizationBounded(t *testing.T) {
	p := hw.Siracusa()
	f := func(mRaw, kRaw, nRaw uint16) bool {
		m := 1 + int(mRaw)%512
		k := 1 + int(kRaw)%512
		n := 1 + int(nRaw)%512
		u := Utilization(p, Linear(p, m, k, n, int8Elem))
		return u > 0 && u <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearPanicsOnBadShape(t *testing.T) {
	p := hw.Siracusa()
	defer func() {
		if recover() == nil {
			t.Error("bad shape did not panic")
		}
	}()
	Linear(p, 0, 1, 1, int8Elem)
}
