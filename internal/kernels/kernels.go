// Package kernels provides cycle-accurate-style cost models for the
// compute kernels of transformer inference on a Siracusa-like cluster.
// Each model returns cluster-busy cycles plus the bytes the kernel
// moves between memory levels; the performance simulator turns those
// into DMA occupancy and the energy model into joules.
//
// The models capture the effects the paper calls out explicitly:
//   - SIMD dot-product throughput (4 int8 MACs/core/cycle),
//   - per-kernel launch overhead and per-output loop overhead, which
//     make small kernels scale sub-linearly ("the runtime of a GEMM
//     kernel does not scale down linearly as the overall kernel size
//     is reduced"),
//   - ceil-based work imbalance when a dimension does not divide the
//     core count.
package kernels

import (
	"fmt"

	"mcudist/internal/hw"
)

// Elem describes deployed element sizes in bytes.
type Elem struct {
	Weight int // weight scalar (1 = int8)
	Act    int // activation scalar (1 = int8)
	Acc    int // partial-sum scalar (4 = int32)
	Reduce int // partial-output scalar as exchanged between chips
}

// Cost is the resource usage of one kernel invocation on one chip.
type Cost struct {
	// Name identifies the kernel for traces and breakdowns.
	Name string
	// Cycles is cluster compute occupancy (data assumed in L1).
	Cycles float64
	// MACs counts multiply-accumulates (0 for elementwise kernels).
	MACs int64
	// WeightBytes is weight data consumed, which moves L2→L1 (and
	// L3→L2 first when the deployment streams weights).
	WeightBytes int64
	// ActInBytes is activation input moved L2→L1.
	ActInBytes int64
	// ActOutBytes is activation output moved L1→L2.
	ActOutBytes int64
	// M, K, N record the GEMM shape (activations M×K against a K×N
	// weight matrix) for kernels whose weight operand can be tiled by
	// the memory-hierarchy simulator. Zero for elementwise kernels and
	// for composite costs: Add deliberately drops the dims, because a
	// summed cost is no longer one GEMM.
	M, K, N int
	// FFN marks the cost as belonging to the feed-forward layer
	// family; the memory-hierarchy autotuner assigns attention and FFN
	// GEMMs independent tilings. Set by the deployment planner (the
	// kernel models don't know which sublayer invokes them), and
	// likewise dropped by Add.
	FFN bool
}

// Add combines two costs (sequential composition on one chip).
func (c Cost) Add(o Cost) Cost {
	return Cost{
		Name:        c.Name,
		Cycles:      c.Cycles + o.Cycles,
		MACs:        c.MACs + o.MACs,
		WeightBytes: c.WeightBytes + o.WeightBytes,
		ActInBytes:  c.ActInBytes + o.ActInBytes,
		ActOutBytes: c.ActOutBytes + o.ActOutBytes,
	}
}

// TotalL2L1Bytes is all data the kernel moves between L2 and L1.
func (c Cost) TotalL2L1Bytes() int64 {
	return c.WeightBytes + c.ActInBytes + c.ActOutBytes
}

// perOutputOverheadCycles models the per-output-element loop epilogue
// (pointer updates, accumulator init/requant staging) of the int8
// GEMM kernels.
const perOutputOverheadCycles = 2.0

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("kernels: ceilDiv by %d", b))
	}
	return (a + b - 1) / b
}

// matmulCycles models an M×K · K×N product on the cluster. Work is
// parallelized over the larger output dimension; the inner dot product
// runs on the SIMD unit in ceil(K/width) steps.
func matmulCycles(p hw.Params, m, k, n int) float64 {
	cores := p.Chip.Cores
	width := p.Chip.MACsPerCorePerCycle
	inner := float64(ceilDiv(k, width)) + perOutputOverheadCycles
	var perCoreOutputs int
	if m >= n {
		perCoreOutputs = ceilDiv(m, cores) * n
	} else {
		perCoreOutputs = ceilDiv(n, cores) * m
	}
	return float64(p.Chip.KernelSetupCycles) + float64(perCoreOutputs)*inner
}

// Linear models x·W (+bias): activations M×K against weights K×N.
func Linear(p hw.Params, m, k, n int, e Elem) Cost {
	if m <= 0 || k <= 0 || n <= 0 {
		panic(fmt.Sprintf("kernels: linear shape %dx%dx%d", m, k, n))
	}
	return Cost{
		Name:        "linear",
		Cycles:      matmulCycles(p, m, k, n),
		MACs:        int64(m) * int64(k) * int64(n),
		WeightBytes: int64(k) * int64(n) * int64(e.Weight),
		ActInBytes:  int64(m) * int64(k) * int64(e.Act),
		ActOutBytes: int64(m) * int64(n) * int64(e.Act),
		M:           m,
		K:           k,
		N:           n,
	}
}

// MatMulAct models an activation-by-activation product (attention
// score and context matmuls): both operands are activations, e.g. the
// KV cache read in autoregressive mode.
func MatMulAct(p hw.Params, m, k, n int, e Elem) Cost {
	if m <= 0 || k <= 0 || n <= 0 {
		panic(fmt.Sprintf("kernels: matmulact shape %dx%dx%d", m, k, n))
	}
	return Cost{
		Name:        "matmul",
		Cycles:      matmulCycles(p, m, k, n),
		MACs:        int64(m) * int64(k) * int64(n),
		ActInBytes:  (int64(m)*int64(k) + int64(k)*int64(n)) * int64(e.Act),
		ActOutBytes: int64(m) * int64(n) * int64(e.Act),
	}
}

// elementwise models a parallel map over rows×cols elements.
func elementwise(p hw.Params, name string, elems int, cyclesPerElem float64, inBytes, outBytes int64) Cost {
	perCore := ceilDiv(elems, p.Chip.Cores)
	return Cost{
		Name:        name,
		Cycles:      float64(p.Chip.KernelSetupCycles) + float64(perCore)*cyclesPerElem,
		ActInBytes:  inBytes,
		ActOutBytes: outBytes,
	}
}

// Softmax models a row-wise numerically-stable softmax (max scan, exp
// via the cluster's LUT-based approximation, normalize).
func Softmax(p hw.Params, rows, cols int, e Elem) Cost {
	n := int64(rows) * int64(cols) * int64(e.Act)
	return elementwise(p, "softmax", rows*cols, 8, n, n)
}

// Norm models LayerNorm/RMSNorm over rows of the given width.
func Norm(p hw.Params, rows, cols int, e Elem) Cost {
	n := int64(rows) * int64(cols) * int64(e.Act)
	return elementwise(p, "norm", rows*cols, 5, n, n)
}

// GELU models the tanh-approximated activation.
func GELU(p hw.Params, rows, cols int, e Elem) Cost {
	n := int64(rows) * int64(cols) * int64(e.Act)
	return elementwise(p, "gelu", rows*cols, 4, n, n)
}

// ResidualAdd models the skip-connection addition.
func ResidualAdd(p hw.Params, rows, cols int, e Elem) Cost {
	n := int64(rows) * int64(cols) * int64(e.Act)
	return elementwise(p, "residual", rows*cols, 1, 2*n, n)
}

// RoPE models rotary embedding application to a rows×cols slice.
func RoPE(p hw.Params, rows, cols int, e Elem) Cost {
	n := int64(rows) * int64(cols) * int64(e.Act)
	return elementwise(p, "rope", rows*cols, 6, n, n)
}

// Requant models int32→int8 requantization of rows×cols accumulators.
func Requant(p hw.Params, rows, cols int, e Elem) Cost {
	in := int64(rows) * int64(cols) * int64(e.Acc)
	out := int64(rows) * int64(cols) * int64(e.Act)
	return elementwise(p, "requant", rows*cols, 2, in, out)
}

// ReduceAdd models accumulating one incoming partial-output tile into
// the local partial during the hierarchical all-reduce, in the
// exchange precision (int8 saturating add as deployed, int32 for the
// exact ablation).
func ReduceAdd(p hw.Params, rows, cols int, e Elem) Cost {
	b := e.Reduce
	if b <= 0 {
		b = e.Acc
	}
	n := int64(rows) * int64(cols) * int64(b)
	return elementwise(p, "reduce-add", rows*cols, 1, 2*n, n)
}

// KVAppend models writing the new keys/values of rows positions into
// the cache (pure data movement through the cluster DMA).
func KVAppend(p hw.Params, rows, cols int, e Elem) Cost {
	n := int64(rows) * int64(cols) * int64(e.Act)
	return Cost{Name: "kv-append", Cycles: float64(p.Chip.DMAL2L1SetupCycles), ActOutBytes: 2 * n}
}

// DMATime returns the cycles the given engine bandwidth needs to move
// n bytes, including the fixed per-transfer setup, split into tiles of
// at most tileBytes (0 = single transfer).
func DMATime(bytes int64, bytesPerCycle float64, setupCycles int, tileBytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	if bytesPerCycle <= 0 {
		panic("kernels: DMA bandwidth must be positive")
	}
	tiles := int64(1)
	if tileBytes > 0 {
		tiles = (bytes + tileBytes - 1) / tileBytes
	}
	return float64(bytes)/bytesPerCycle + float64(tiles)*float64(setupCycles)
}

// Utilization returns achieved/peak MAC throughput of a cost on the
// given chip: 1.0 means every cycle retires the peak MAC count.
func Utilization(p hw.Params, c Cost) float64 {
	if c.Cycles <= 0 || c.MACs == 0 {
		return 0
	}
	peak := float64(p.PeakMACsPerCycle())
	return float64(c.MACs) / (c.Cycles * peak)
}
