// Package prof wires the standard pprof profile outputs into a CLI:
// Start begins a CPU profile and returns a stop function that also
// writes the allocation profile, so one deferred call at the top of
// main covers both `-cpuprofile` and `-memprofile`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the -cpuprofile / -memprofile flag values
// (empty = that profile off) and returns the function that finalizes
// whichever profiles are active. The allocation profile is written at
// stop time after a final GC, so it reflects the whole run.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile is end-of-run truth
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("alloc profile: %w", err)
			}
		}
		return nil
	}, nil
}
