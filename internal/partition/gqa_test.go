package partition

import (
	"testing"
	"testing/quick"

	"mcudist/internal/model"
)

func TestGQASplitAlignsToGroups(t *testing.T) {
	cfg := model.SmolLM135M() // H=9, KVHeads=3, group size 3
	p, err := NewTensorParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if p.KVSlice[c].Len() != 1 {
			t.Errorf("chip %d owns %d KV heads, want 1", c, p.KVSlice[c].Len())
		}
		if p.Heads[c].Len() != 3 {
			t.Errorf("chip %d owns %d query heads, want 3", c, p.Heads[c].Len())
		}
	}
}

func TestGQARejectsChipsBeyondKVHeads(t *testing.T) {
	cfg := model.SmolLM135M() // 3 KV heads
	if _, err := NewTensorParallel(cfg, 4); err == nil {
		t.Fatal("4 chips on 3 KV heads accepted")
	}
	if _, err := NewTensorParallel(cfg, 9); err == nil {
		t.Fatal("9 chips (query-head count) accepted despite GQA")
	}
}

func TestGQANoReplication(t *testing.T) {
	cfg := model.SmolLM135M()
	for _, n := range []int{1, 3} {
		p, err := NewTensorParallel(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.TotalWeightBytes(); got != cfg.TotalWeightBytes() {
			t.Errorf("n=%d: stored %d, model %d", n, got, cfg.TotalWeightBytes())
		}
	}
}

func TestGQAKVCacheSharded(t *testing.T) {
	cfg := model.SmolLM135M()
	p, _ := NewTensorParallel(cfg, 3)
	s := 64
	total := 0
	for c := 0; c < 3; c++ {
		total += p.KVBytesPerBlockOnChip(c, s)
	}
	if total != cfg.KVBytesPerBlock(s) {
		t.Fatalf("sharded KV %d != full %d", total, cfg.KVBytesPerBlock(s))
	}
	// GQA cache is smaller than MHA would be: KVDim < P.
	mha := cfg
	mha.KVHeads = 0
	if cfg.KVBytesPerBlock(s) >= mha.KVBytesPerBlock(s) {
		t.Fatal("GQA did not shrink the KV cache")
	}
}

func TestGQAWeightBytesSmaller(t *testing.T) {
	gqa := model.SmolLM135M()
	mha := gqa
	mha.KVHeads = 0
	if gqa.BlockWeightBytes() >= mha.BlockWeightBytes() {
		t.Fatal("GQA did not shrink K/V projections")
	}
}

// Property: for random GQA geometries, splits stay aligned and
// conserve weights.
func TestPropertyGQAPlans(t *testing.T) {
	f := func(kvRaw, groupRaw, nRaw uint8) bool {
		kv := 1 + int(kvRaw)%8
		group := 1 + int(groupRaw)%4
		cfg := model.TinyLlama42M()
		cfg.H = kv * group
		cfg.KVHeads = kv
		cfg.P = cfg.H * 8 // even head dim for RoPE
		n := 1 + int(nRaw)%kv
		p, err := NewTensorParallel(cfg, n)
		if err != nil {
			return false
		}
		if p.Validate() != nil {
			return false
		}
		return p.TotalWeightBytes() == cfg.TotalWeightBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
