// Package partition implements the paper's contribution: the
// tensor-parallel partitioning of transformer blocks across chips.
//
// WQ, WK and WV are split along the attention-head dimension so each
// chip owns complete heads; WO is split along its rows to match. The
// FC matrices W1 (and W3) are split along the intermediate dimension F
// and W2 along its rows. No weight is replicated, every chip produces
// a partial S×E output for both the MHSA and the FC stage, and the
// block needs exactly two synchronizations (hierarchical all-reduces).
//
// Two baselines from the paper's related-work comparison (Table I) are
// implemented for quantitative comparison: weight-replicated
// sequence-splitting (edge CPU works) and layer-pipeline parallelism
// (PipeEdge/Hermes).
package partition

import (
	"fmt"

	"mcudist/internal/model"
)

// Strategy selects the distribution scheme.
type Strategy int

const (
	// TensorParallel is the paper's scheme: head-split MHSA, F-split
	// FC, no replication, two syncs per block.
	TensorParallel Strategy = iota
	// Replicated duplicates all weights on every chip and splits the
	// input sequence across chips (Hu & Li style). Off-chip reliance
	// persists and single-token workloads cannot parallelize.
	Replicated
	// Pipeline assigns contiguous block ranges to chips
	// (PipeEdge/Hermes style). Per-chip memory shrinks, but a single
	// request occupies one stage at a time.
	Pipeline
)

func (s Strategy) String() string {
	switch s {
	case TensorParallel:
		return "tensor-parallel"
	case Replicated:
		return "replicated"
	case Pipeline:
		return "pipeline"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Range is a half-open [Lo, Hi) slice of a dimension.
type Range struct{ Lo, Hi int }

// Len returns the width of the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Plan is the placement of one model onto N chips.
type Plan struct {
	Strategy Strategy
	Chips    int
	Config   model.Config

	// Heads[i] is the query-head range owned by chip i
	// (TensorParallel).
	Heads []Range
	// KVSlice[i] is the key/value-head range owned by chip i; equal
	// to Heads without GQA, and aligned to query groups with it.
	KVSlice []Range
	// FSlice[i] is the intermediate-dimension range of chip i
	// (TensorParallel).
	FSlice []Range
	// Blocks[i] is the block range owned by chip i (Pipeline); for
	// other strategies every chip participates in every block.
	Blocks []Range
	// Seq[i] is the sequence range processed by chip i (Replicated);
	// computed per workload sequence length via SeqSplit.
	seqLen int
}

// evenRanges splits size into n contiguous ranges differing by at most
// one element; the first (size mod n) ranges get the extra element.
func evenRanges(size, n int) []Range {
	out := make([]Range, n)
	base := size / n
	rem := size % n
	lo := 0
	for i := 0; i < n; i++ {
		w := base
		if i < rem {
			w++
		}
		out[i] = Range{Lo: lo, Hi: lo + w}
		lo += w
	}
	return out
}

// NewTensorParallel builds the paper's partitioning of cfg across n
// chips. Each chip must receive at least one attention head and one
// intermediate column. With grouped-query attention the split happens
// along KV heads (each chip owns whole query groups), so the KV cache
// stays chip-local and nothing is replicated; this caps the chip
// count at the KV head count.
func NewTensorParallel(cfg model.Config, n int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("partition: chip count %d must be positive", n)
	}
	if n > cfg.KVHeadCount() {
		if cfg.KVHeadCount() < cfg.H {
			return nil, fmt.Errorf("partition: %d chips exceed %d KV heads (GQA split is per KV group)", n, cfg.KVHeadCount())
		}
		return nil, fmt.Errorf("partition: %d chips exceed %d attention heads", n, cfg.H)
	}
	if n > cfg.F {
		return nil, fmt.Errorf("partition: %d chips exceed intermediate dimension %d", n, cfg.F)
	}
	kv := evenRanges(cfg.KVHeadCount(), n)
	heads := make([]Range, n)
	group := cfg.QueryGroupSize()
	for i, r := range kv {
		heads[i] = Range{Lo: r.Lo * group, Hi: r.Hi * group}
	}
	p := &Plan{
		Strategy: TensorParallel,
		Chips:    n,
		Config:   cfg,
		Heads:    heads,
		KVSlice:  kv,
		FSlice:   evenRanges(cfg.F, n),
		Blocks:   fullBlocks(cfg.L, n),
	}
	return p, nil
}

// NewReplicated builds the weight-replicated sequence-split baseline.
func NewReplicated(cfg model.Config, n int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("partition: chip count %d must be positive", n)
	}
	return &Plan{
		Strategy: Replicated,
		Chips:    n,
		Config:   cfg,
		Blocks:   fullBlocks(cfg.L, n),
	}, nil
}

// NewPipeline builds the layer-pipeline baseline: contiguous block
// ranges per chip.
func NewPipeline(cfg model.Config, n int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("partition: chip count %d must be positive", n)
	}
	if n > cfg.L {
		return nil, fmt.Errorf("partition: %d chips exceed %d blocks", n, cfg.L)
	}
	return &Plan{
		Strategy: Pipeline,
		Chips:    n,
		Config:   cfg,
		Blocks:   evenRanges(cfg.L, n),
	}, nil
}

func fullBlocks(l, n int) []Range {
	out := make([]Range, n)
	for i := range out {
		out[i] = Range{Lo: 0, Hi: l}
	}
	return out
}

// PSlice returns the projection width owned by chip i (its heads ×
// head dim). Full P for non-tensor-parallel strategies.
func (p *Plan) PSlice(chip int) int {
	if p.Strategy != TensorParallel {
		return p.Config.P
	}
	return p.Heads[chip].Len() * p.Config.HeadDim()
}

// PRange returns the column range of Q (and row range of WO) owned by
// chip i.
func (p *Plan) PRange(chip int) Range {
	if p.Strategy != TensorParallel {
		return Range{Lo: 0, Hi: p.Config.P}
	}
	hd := p.Config.HeadDim()
	return Range{Lo: p.Heads[chip].Lo * hd, Hi: p.Heads[chip].Hi * hd}
}

// KVRange returns the column range of K/V owned by chip i.
func (p *Plan) KVRange(chip int) Range {
	if p.Strategy != TensorParallel {
		return Range{Lo: 0, Hi: p.Config.KVDim()}
	}
	hd := p.Config.HeadDim()
	return Range{Lo: p.KVSlice[chip].Lo * hd, Hi: p.KVSlice[chip].Hi * hd}
}

// KVWidth returns the K/V projection width owned by chip i.
func (p *Plan) KVWidth(chip int) int {
	return p.KVRange(chip).Len()
}

// FWidth returns the intermediate-dimension width owned by chip i.
func (p *Plan) FWidth(chip int) int {
	if p.Strategy != TensorParallel {
		return p.Config.F
	}
	return p.FSlice[chip].Len()
}

// BlockWeightBytesOnChip returns the bytes of one block's weights
// resident on chip i (zero when the chip does not hold that block's
// weights, which only happens under Pipeline).
func (p *Plan) BlockWeightBytesOnChip(chip int) int {
	cfg := p.Config
	switch p.Strategy {
	case TensorParallel:
		attn := 2*cfg.E*p.PSlice(chip) + 2*cfg.E*p.KVWidth(chip)
		ffn := cfg.FFNMatrices() * cfg.E * p.FWidth(chip)
		return (attn + ffn) * cfg.WeightBytes
	case Replicated:
		return cfg.BlockWeightBytes()
	case Pipeline:
		return cfg.BlockWeightBytes()
	default:
		panic("partition: unknown strategy")
	}
}

// BlocksOnChip returns how many blocks chip i holds weights for.
func (p *Plan) BlocksOnChip(chip int) int {
	return p.Blocks[chip].Len()
}

// TotalWeightBytes returns the summed weight bytes across all chips;
// for the paper's scheme this equals the model size exactly (no
// replication).
func (p *Plan) TotalWeightBytes() int {
	total := 0
	for c := 0; c < p.Chips; c++ {
		total += p.BlockWeightBytesOnChip(c) * p.BlocksOnChip(c)
	}
	return total
}

// ReplicationFactor is total stored weights / model weights.
func (p *Plan) ReplicationFactor() float64 {
	return float64(p.TotalWeightBytes()) / float64(p.Config.TotalWeightBytes())
}

// KVBytesPerBlockOnChip returns the KV-cache bytes chip i stores per
// block it participates in, at context length s. Tensor-parallel chips
// cache only their own heads; replicated chips cache everything;
// pipeline chips cache full width for their own blocks.
func (p *Plan) KVBytesPerBlockOnChip(chip, s int) int {
	if p.Strategy == TensorParallel {
		return 2 * s * p.KVWidth(chip) * p.Config.ActBytes
	}
	return p.Config.KVBytesPerBlock(s)
}

// SyncsPerBlock returns how many chip synchronizations one block
// needs: the paper's headline property is exactly two for the
// tensor-parallel scheme. Replicated sequence splitting synchronizes
// around attention (context exchange) and at the end; a pipeline has
// no intra-block sync, only stage-to-stage handoff.
func (p *Plan) SyncsPerBlock() int {
	switch p.Strategy {
	case TensorParallel:
		return 2
	case Replicated:
		return 2
	case Pipeline:
		return 0
	default:
		panic("partition: unknown strategy")
	}
}

// ReducePayloadBytes is the per-hop payload of the partial-output
// all-reduce for sequence length s: an S×E tile of partial sums in the
// configured exchange precision (int8 as deployed, int32 for the exact
// ablation).
func (p *Plan) ReducePayloadBytes(s int) int64 {
	return int64(s) * int64(p.Config.E) * int64(p.Config.ReduceBytes)
}

// BcastPayloadBytes is the per-hop payload of the result broadcast:
// an S×E tile of int8 activations.
func (p *Plan) BcastPayloadBytes(s int) int64 {
	return int64(s) * int64(p.Config.E) * int64(p.Config.ActBytes)
}

// SeqSplit returns the sequence rows chip i processes for sequence
// length s under the Replicated strategy. With fewer rows than chips,
// trailing chips receive empty ranges (they idle — the baseline's
// single-token weakness).
func (p *Plan) SeqSplit(s int) []Range {
	if p.Strategy != Replicated {
		panic("partition: SeqSplit is a Replicated-strategy query")
	}
	return evenRanges(s, p.Chips)
}

// Validate checks the plan's structural invariants.
func (p *Plan) Validate() error {
	if p.Chips <= 0 {
		return fmt.Errorf("partition: no chips")
	}
	switch p.Strategy {
	case TensorParallel:
		if err := coverExactly(p.Heads, p.Config.H, "heads"); err != nil {
			return err
		}
		if err := coverExactly(p.KVSlice, p.Config.KVHeadCount(), "kv heads"); err != nil {
			return err
		}
		if err := coverExactly(p.FSlice, p.Config.F, "intermediate"); err != nil {
			return err
		}
		group := p.Config.QueryGroupSize()
		for c := 0; c < p.Chips; c++ {
			if p.Heads[c].Len() == 0 {
				return fmt.Errorf("partition: chip %d owns no heads", c)
			}
			if p.FSlice[c].Len() == 0 {
				return fmt.Errorf("partition: chip %d owns no intermediate columns", c)
			}
			if p.Heads[c].Lo != p.KVSlice[c].Lo*group || p.Heads[c].Hi != p.KVSlice[c].Hi*group {
				return fmt.Errorf("partition: chip %d query heads %v misaligned with KV heads %v", c, p.Heads[c], p.KVSlice[c])
			}
		}
	case Pipeline:
		if err := coverExactly(p.Blocks, p.Config.L, "blocks"); err != nil {
			return err
		}
	case Replicated:
		// nothing structural to check
	default:
		return fmt.Errorf("partition: unknown strategy %d", p.Strategy)
	}
	return nil
}

func coverExactly(rs []Range, size int, what string) error {
	lo := 0
	for i, r := range rs {
		if r.Lo != lo {
			return fmt.Errorf("partition: %s range %d starts at %d, want %d (gap or overlap)", what, i, r.Lo, lo)
		}
		if r.Hi < r.Lo {
			return fmt.Errorf("partition: %s range %d inverted", what, i)
		}
		lo = r.Hi
	}
	if lo != size {
		return fmt.Errorf("partition: %s ranges cover %d of %d", what, lo, size)
	}
	return nil
}
