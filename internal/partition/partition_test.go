package partition

import (
	"testing"
	"testing/quick"

	"mcudist/internal/model"
)

func TestTensorParallelNoReplication(t *testing.T) {
	cfg := model.TinyLlama42M()
	for _, n := range []int{1, 2, 4, 8} {
		p, err := NewTensorParallel(cfg, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// The paper's core claim: weights are scattered, never
		// duplicated.
		if got := p.TotalWeightBytes(); got != cfg.TotalWeightBytes() {
			t.Fatalf("n=%d: stored %d bytes, model has %d", n, got, cfg.TotalWeightBytes())
		}
		if rf := p.ReplicationFactor(); rf != 1.0 {
			t.Fatalf("n=%d: replication factor %g, want exactly 1", n, rf)
		}
	}
}

func TestTensorParallelTwoSyncsPerBlock(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, err := NewTensorParallel(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SyncsPerBlock(); got != 2 {
		t.Fatalf("syncs per block = %d, paper requires exactly 2", got)
	}
}

func TestTensorParallelEvenHeadSplit(t *testing.T) {
	cfg := model.TinyLlama42M() // H=8, F=2048
	p, _ := NewTensorParallel(cfg, 8)
	for c := 0; c < 8; c++ {
		if p.Heads[c].Len() != 1 {
			t.Fatalf("chip %d owns %d heads, want 1", c, p.Heads[c].Len())
		}
		if p.PSlice(c) != 64 {
			t.Fatalf("chip %d P slice = %d, want 64", c, p.PSlice(c))
		}
		if p.FWidth(c) != 256 {
			t.Fatalf("chip %d F width = %d, want 256", c, p.FWidth(c))
		}
	}
}

func TestTensorParallelUnevenSplit(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, err := NewTensorParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < 3; c++ {
		total += p.Heads[c].Len()
	}
	if total != cfg.H {
		t.Fatalf("heads covered %d of %d", total, cfg.H)
	}
	// Uneven is allowed; difference at most one head.
	if p.Heads[0].Len()-p.Heads[2].Len() > 1 {
		t.Fatalf("head imbalance too large: %v", p.Heads)
	}
}

func TestTensorParallelRejectsTooManyChips(t *testing.T) {
	cfg := model.TinyLlama42M() // 8 heads
	if _, err := NewTensorParallel(cfg, 9); err == nil {
		t.Fatal("9 chips on 8 heads accepted")
	}
	if _, err := NewTensorParallel(cfg, 0); err == nil {
		t.Fatal("0 chips accepted")
	}
}

func TestScaled64Heads(t *testing.T) {
	cfg := model.TinyLlamaScaled64()
	p, err := NewTensorParallel(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.PSlice(0) != 8 {
		t.Fatalf("64-chip P slice = %d, want 8", p.PSlice(0))
	}
	if p.TotalWeightBytes() != cfg.TotalWeightBytes() {
		t.Fatal("scaled model replicated weights")
	}
}

func TestPRangeContiguous(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := NewTensorParallel(cfg, 4)
	lo := 0
	for c := 0; c < 4; c++ {
		r := p.PRange(c)
		if r.Lo != lo {
			t.Fatalf("chip %d P range starts at %d, want %d", c, r.Lo, lo)
		}
		lo = r.Hi
	}
	if lo != cfg.P {
		t.Fatalf("P ranges cover %d of %d", lo, cfg.P)
	}
}

func TestKVCacheSplitAcrossChips(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := NewTensorParallel(cfg, 8)
	s := 128
	total := 0
	for c := 0; c < 8; c++ {
		total += p.KVBytesPerBlockOnChip(c, s)
	}
	if total != cfg.KVBytesPerBlock(s) {
		t.Fatalf("distributed KV %d != full KV %d", total, cfg.KVBytesPerBlock(s))
	}
}

func TestReplicatedDuplicatesWeights(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, err := NewReplicated(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if rf := p.ReplicationFactor(); rf != 4.0 {
		t.Fatalf("replication factor %g, want 4", rf)
	}
	// Full KV everywhere.
	if p.KVBytesPerBlockOnChip(0, 64) != cfg.KVBytesPerBlock(64) {
		t.Fatal("replicated chip should cache full KV")
	}
}

func TestReplicatedSeqSplit(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := NewReplicated(cfg, 4)
	rs := p.SeqSplit(10)
	if len(rs) != 4 {
		t.Fatalf("got %d ranges", len(rs))
	}
	total := 0
	for _, r := range rs {
		total += r.Len()
	}
	if total != 10 {
		t.Fatalf("seq split covers %d of 10", total)
	}
	// Single token: only one chip gets work.
	one := p.SeqSplit(1)
	active := 0
	for _, r := range one {
		if r.Len() > 0 {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("single-token replicated split activates %d chips, want 1", active)
	}
}

func TestPipelineSplitsBlocks(t *testing.T) {
	cfg := model.TinyLlama42M() // L=8
	p, err := NewPipeline(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if p.BlocksOnChip(c) != 2 {
			t.Fatalf("stage %d holds %d blocks, want 2", c, p.BlocksOnChip(c))
		}
	}
	// Pipeline stores each weight exactly once.
	if rf := p.ReplicationFactor(); rf != 1.0 {
		t.Fatalf("pipeline replication factor %g, want 1", rf)
	}
	if p.SyncsPerBlock() != 0 {
		t.Fatal("pipeline should have no intra-block syncs")
	}
}

func TestPipelineRejectsMoreChipsThanBlocks(t *testing.T) {
	cfg := model.TinyLlama42M()
	if _, err := NewPipeline(cfg, 9); err == nil {
		t.Fatal("9 stages on 8 blocks accepted")
	}
}

func TestPayloadBytes(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := NewTensorParallel(cfg, 8)
	// AR mode: S=1 → reduce 1×512 int8 partials = 512 B, bcast 512 B.
	if got := p.ReducePayloadBytes(1); got != 512 {
		t.Fatalf("reduce payload = %d, want 512", got)
	}
	if got := p.BcastPayloadBytes(1); got != 512 {
		t.Fatalf("bcast payload = %d, want 512", got)
	}
	// Prompt S=16, int8 exchange.
	if got := p.ReducePayloadBytes(16); got != 16*512 {
		t.Fatalf("prompt reduce payload = %d", got)
	}
	// The exact-reduction ablation exchanges int32 accumulators.
	exact := cfg
	exact.ReduceBytes = 4
	pe, _ := NewTensorParallel(exact, 8)
	if got := pe.ReducePayloadBytes(16); got != 16*512*4 {
		t.Fatalf("int32 reduce payload = %d", got)
	}
}

func TestValidateCatchesCorruptedPlan(t *testing.T) {
	cfg := model.TinyLlama42M()
	p, _ := NewTensorParallel(cfg, 4)
	p.Heads[1].Lo++ // introduce a gap
	if err := p.Validate(); err == nil {
		t.Fatal("gap in head coverage accepted")
	}
	p, _ = NewTensorParallel(cfg, 4)
	p.FSlice[3].Hi-- // shrink coverage
	if err := p.Validate(); err == nil {
		t.Fatal("short intermediate coverage accepted")
	}
}

// Property: for any chip count and head count, the tensor-parallel
// plan never replicates and never drops weights.
func TestPropertyNoReplicationAnyChipCount(t *testing.T) {
	f := func(nRaw, hRaw uint8) bool {
		h := 1 + int(hRaw)%64
		cfg := model.TinyLlama42M()
		cfg.H = h
		cfg.P = h * 8 // keep head dim even for RoPE
		n := 1 + int(nRaw)%h
		p, err := NewTensorParallel(cfg, n)
		if err != nil {
			return false
		}
		if p.Validate() != nil {
			return false
		}
		return p.TotalWeightBytes() == cfg.TotalWeightBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-chip weight imbalance is bounded by one head + one F
// column worth of weights.
func TestPropertyBalancedSplit(t *testing.T) {
	f := func(nRaw uint8) bool {
		cfg := model.TinyLlama42M()
		n := 1 + int(nRaw)%8
		p, err := NewTensorParallel(cfg, n)
		if err != nil {
			return false
		}
		minB, maxB := -1, 0
		for c := 0; c < n; c++ {
			b := p.BlockWeightBytesOnChip(c)
			if minB == -1 || b < minB {
				minB = b
			}
			if b > maxB {
				maxB = b
			}
		}
		slack := (4*cfg.E*cfg.HeadDim() + cfg.FFNMatrices()*cfg.E) * cfg.WeightBytes
		return maxB-minB <= slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: KV cache shards always sum to the full cache.
func TestPropertyKVConservation(t *testing.T) {
	f := func(nRaw, sRaw uint8) bool {
		cfg := model.TinyLlama42M()
		n := 1 + int(nRaw)%8
		s := 1 + int(sRaw)%256
		p, err := NewTensorParallel(cfg, n)
		if err != nil {
			return false
		}
		total := 0
		for c := 0; c < n; c++ {
			total += p.KVBytesPerBlockOnChip(c, s)
		}
		return total == cfg.KVBytesPerBlock(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyStrings(t *testing.T) {
	if TensorParallel.String() != "tensor-parallel" ||
		Replicated.String() != "replicated" ||
		Pipeline.String() != "pipeline" {
		t.Fatal("strategy names wrong")
	}
}
