// Package model defines the transformer configurations evaluated in
// the paper (TinyLlama-42M, its scaled-up 64-head variant, MobileBERT),
// weight containers with deterministic synthetic initialization, and a
// reference single-device forward pass in both prompt and
// autoregressive (KV-cache) modes. The reference output is the ground
// truth the distributed executor must reproduce.
package model

import (
	"errors"
	"fmt"
)

// NormKind selects the per-block normalization.
type NormKind int

const (
	// RMSNorm is Llama-style root-mean-square normalization (no bias).
	RMSNorm NormKind = iota
	// LayerNorm is BERT-style mean/variance normalization with bias.
	LayerNorm
)

func (k NormKind) String() string {
	switch k {
	case RMSNorm:
		return "rmsnorm"
	case LayerNorm:
		return "layernorm"
	default:
		return fmt.Sprintf("norm(%d)", int(k))
	}
}

// FFNKind selects the feed-forward structure.
type FFNKind int

const (
	// FFNGELU is the classic two-matrix FFN with a GELU between, the
	// structure described in the paper's background section.
	FFNGELU FFNKind = iota
	// FFNGated is the Llama-style gated FFN (SiLU(x·W1) ∘ (x·W3))·W2.
	FFNGated
)

func (k FFNKind) String() string {
	switch k {
	case FFNGELU:
		return "gelu"
	case FFNGated:
		return "gated"
	default:
		return fmt.Sprintf("ffn(%d)", int(k))
	}
}

// Arch distinguishes causal decoders from bidirectional encoders.
type Arch int

const (
	// Decoder is a causal (auto-regressive capable) transformer.
	Decoder Arch = iota
	// Encoder is a bidirectional transformer (BERT-style).
	Encoder
)

func (a Arch) String() string {
	if a == Encoder {
		return "encoder"
	}
	return "decoder"
}

// Mode is the inference mode of the paper's evaluation.
type Mode int

const (
	// Autoregressive generates one token against a KV cache; the
	// dominant kernel is GEMV.
	Autoregressive Mode = iota
	// Prompt processes a whole sequence at once; the dominant kernel
	// is GEMM.
	Prompt
)

func (m Mode) String() string {
	if m == Autoregressive {
		return "autoregressive"
	}
	return "prompt"
}

// Config describes one transformer model using the paper's dimension
// names: sequence length S (a property of the workload, not stored
// here), embedding dimension E, total projection dimension P, head
// count H, intermediate dimension F, and block count L.
type Config struct {
	Name string
	Arch Arch

	E int // embedding dimension
	P int // total projection dimension (H × head dim)
	H int // attention (query) heads
	F int // FFN intermediate dimension
	L int // number of transformer blocks
	// VocabSize is the tokenizer vocabulary (embedding table and LM
	// head rows). The paper's evaluation measures transformer blocks
	// only; the LM-head extension study uses this.
	VocabSize int

	// KVHeads enables grouped-query attention (GQA): the number of
	// key/value heads, each shared by H/KVHeads query heads. Zero
	// means full multi-head attention (KVHeads = H). GQA shrinks the
	// KV cache and the K/V projections — the direction recent SLMs
	// (MobileLLM, SmolLM, Llama 3.x) take, and a natural extension of
	// the paper's head-wise partitioning.
	KVHeads int

	Norm NormKind
	FFN  FFNKind
	// RoPE enables rotary position embeddings on Q and K.
	RoPE bool
	// RoPETheta is the rotary base frequency.
	RoPETheta float64
	// NormEps is the normalization epsilon.
	NormEps float64

	// WeightBytes is the storage size of one weight scalar as
	// deployed (1 = int8).
	WeightBytes int
	// ActBytes is the storage size of one activation scalar as
	// deployed (1 = int8).
	ActBytes int
	// AccBytes is the storage size of one partial-sum scalar inside a
	// chip's accumulators (4 = int32).
	AccBytes int
	// ReduceBytes is the storage size of one partial-output scalar as
	// exchanged between chips during the all-reduce. The deployed
	// int8 flow requantizes partials before sending (1); the exact
	// ablation exchanges int32 accumulators (4).
	ReduceBytes int
}

// HeadDim returns the per-head projection width.
func (c Config) HeadDim() int { return c.P / c.H }

// KVHeadCount returns the effective number of key/value heads.
func (c Config) KVHeadCount() int {
	if c.KVHeads == 0 {
		return c.H
	}
	return c.KVHeads
}

// KVDim returns the width of the K and V projections
// (KVHeadCount × HeadDim); equals P without GQA.
func (c Config) KVDim() int { return c.KVHeadCount() * c.HeadDim() }

// QueryGroupSize returns how many query heads share one KV head.
func (c Config) QueryGroupSize() int { return c.H / c.KVHeadCount() }

// Validate reports the first structural problem with the config.
func (c Config) Validate() error {
	switch {
	case c.E <= 0 || c.P <= 0 || c.H <= 0 || c.F <= 0 || c.L <= 0:
		return fmt.Errorf("model %s: dimensions must be positive", c.Name)
	case c.P%c.H != 0:
		return fmt.Errorf("model %s: projection %d not divisible by heads %d", c.Name, c.P, c.H)
	case c.RoPE && c.HeadDim()%2 != 0:
		return fmt.Errorf("model %s: RoPE needs even head dim, got %d", c.Name, c.HeadDim())
	case c.WeightBytes <= 0 || c.ActBytes <= 0 || c.AccBytes <= 0 || c.ReduceBytes <= 0:
		return fmt.Errorf("model %s: element sizes must be positive", c.Name)
	case c.NormEps <= 0:
		return fmt.Errorf("model %s: norm epsilon must be positive", c.Name)
	case c.RoPE && c.RoPETheta <= 0:
		return fmt.Errorf("model %s: RoPE theta must be positive", c.Name)
	case c.Arch == Encoder && c.RoPE:
		return errors.New("model: encoder preset with RoPE is not supported")
	case c.KVHeads < 0:
		return fmt.Errorf("model %s: KV head count must be non-negative", c.Name)
	case c.KVHeads > 0 && c.H%c.KVHeads != 0:
		return fmt.Errorf("model %s: %d query heads not divisible by %d KV heads", c.Name, c.H, c.KVHeads)
	}
	return nil
}

// FFNMatrices returns how many weight matrices the FFN holds.
func (c Config) FFNMatrices() int {
	if c.FFN == FFNGated {
		return 3
	}
	return 2
}

// BlockWeightCount returns the number of weight scalars in one block
// (attention projections + FFN; norm gains are negligible and
// excluded, matching the paper's capacity arithmetic). With GQA the
// K/V projections shrink to the KV width.
func (c Config) BlockWeightCount() int {
	attn := 2*c.E*c.P + 2*c.E*c.KVDim() // WQ + WO, WK + WV
	ffn := c.FFNMatrices() * c.E * c.F
	return attn + ffn
}

// BlockWeightBytes returns the deployed byte size of one block's
// weights.
func (c Config) BlockWeightBytes() int {
	return c.BlockWeightCount() * c.WeightBytes
}

// TotalWeightBytes returns the deployed byte size of all L blocks.
func (c Config) TotalWeightBytes() int {
	return c.L * c.BlockWeightBytes()
}

// KVBytesPerBlock returns the per-block KV-cache footprint for a
// context of length s (keys + values across all KV heads).
func (c Config) KVBytesPerBlock(s int) int {
	return 2 * s * c.KVDim() * c.ActBytes
}

// KVBytesTotal returns the KV-cache footprint across all blocks.
func (c Config) KVBytesTotal(s int) int {
	return c.L * c.KVBytesPerBlock(s)
}

// TinyLlama42M is the paper's main workload: the TinyLlama decoder
// with E=512, intermediate size 2048, 8 heads, 8 layers. The paper
// runs it with S=128 in autoregressive mode and S=16 in prompt mode.
func TinyLlama42M() Config {
	return Config{
		Name:        "tinyllama-42m",
		Arch:        Decoder,
		VocabSize:   32000,
		E:           512,
		P:           512,
		H:           8,
		F:           2048,
		L:           8,
		Norm:        RMSNorm,
		FFN:         FFNGELU,
		RoPE:        true,
		RoPETheta:   10000,
		NormEps:     1e-5,
		WeightBytes: 1,
		ActBytes:    1,
		AccBytes:    4,
		ReduceBytes: 1,
	}
}

// TinyLlamaScaled64 is the scalability-study variant: head count
// raised from 8 to 64 with all other parameters unchanged, enabling
// head-parallel distribution across up to 64 chips.
func TinyLlamaScaled64() Config {
	c := TinyLlama42M()
	c.Name = "tinyllama-scaled64"
	c.H = 64
	return c
}

// MobileBERT512 is the paper's encoder workload: embedding dimension
// and intermediate size 512, 4 attention heads, sequence length 268.
// The paper does not state the block count of its simplified
// configuration; we use 12 and report per-block numbers alongside.
func MobileBERT512() Config {
	return Config{
		Name:        "mobilebert-512",
		Arch:        Encoder,
		VocabSize:   30522,
		E:           512,
		P:           512,
		H:           4,
		F:           512,
		L:           12,
		Norm:        LayerNorm,
		FFN:         FFNGELU,
		RoPE:        false,
		NormEps:     1e-5,
		WeightBytes: 1,
		ActBytes:    1,
		AccBytes:    4,
		ReduceBytes: 1,
	}
}

// SmolLM135M is a grouped-query-attention SLM preset (hidden 576, 9
// query heads sharing 3 KV heads, gated FFN of 1536, 30 blocks) —
// representative of the post-paper generation of small language
// models and of the GQA extension of the partitioning scheme.
func SmolLM135M() Config {
	return Config{
		Name:        "smollm-135m",
		Arch:        Decoder,
		VocabSize:   49152,
		E:           576,
		P:           576,
		H:           9,
		KVHeads:     3,
		F:           1536,
		L:           30,
		Norm:        RMSNorm,
		FFN:         FFNGated,
		RoPE:        true,
		RoPETheta:   10000,
		NormEps:     1e-5,
		WeightBytes: 1,
		ActBytes:    1,
		AccBytes:    4,
		ReduceBytes: 1,
	}
}

// EdgeLlama1B is the bigger-than-SRAM scenario tier: a ~1B-parameter
// Llama-3.2-1B-shaped decoder (hidden 2048, 32 query heads sharing 8
// KV heads, gated FFN of 5632, 22 blocks; ~45 MB of int8 block
// weights, ~5.6 MB per chip per block even at 8 chips). No chip count
// keeps a block slice resident in a 2 MiB L2, so every deployment runs
// in the streamed tier — the regime the DRAM-backed memory-hierarchy
// model (hw.MemHierarchy) exists to price and the paper's
// fits-on-chip accounting cannot.
func EdgeLlama1B() Config {
	return Config{
		Name:        "edgellama-1b",
		Arch:        Decoder,
		VocabSize:   128256,
		E:           2048,
		P:           2048,
		H:           32,
		KVHeads:     8,
		F:           5632,
		L:           22,
		Norm:        RMSNorm,
		FFN:         FFNGated,
		RoPE:        true,
		RoPETheta:   10000,
		NormEps:     1e-5,
		WeightBytes: 1,
		ActBytes:    1,
		AccBytes:    4,
		ReduceBytes: 1,
	}
}

// PaperSeqLen returns the sequence length the paper uses for the given
// model and mode.
func PaperSeqLen(c Config, m Mode) int {
	if c.Arch == Encoder {
		return 268
	}
	if m == Prompt {
		return 16
	}
	return 128
}
