package model

import (
	"fmt"

	"mcudist/internal/tensor"
)

// BlockWeights holds the float parameters of one transformer block.
// Shapes follow the paper: WQ is E×P, WK/WV are E×KVDim (= E×P
// without GQA), WO is P×E, W1 is E×F, W2 is F×E and the optional gate
// W3 is E×F.
type BlockWeights struct {
	WQ, WK, WV *tensor.Mat
	WO         *tensor.Mat
	W1, W2     *tensor.Mat
	W3         *tensor.Mat // gated FFN only, nil otherwise

	// Biases are used by LayerNorm-style (BERT) models; nil slices
	// mean no bias. BQ/BK/BV are length P, BO length E, B1 length F,
	// B2 length E.
	BQ, BK, BV []float32
	BO         []float32
	B1         []float32
	B2         []float32

	// Norm parameters. Gain lengths are E; bias is LayerNorm only.
	Norm1Gain, Norm1Bias []float32
	Norm2Gain, Norm2Bias []float32
}

// Weights holds all blocks of a model.
type Weights struct {
	Config Config
	Blocks []*BlockWeights
}

// NewWeights builds deterministic synthetic weights for cfg. Values are
// small and seed-derived so functional tests are reproducible; timing
// and energy never depend on the values, only the shapes.
func NewWeights(cfg Config, seed int64) *Weights {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("model: invalid config: %v", err))
	}
	const scale = 0.08
	w := &Weights{Config: cfg, Blocks: make([]*BlockWeights, cfg.L)}
	s := seed
	next := func() int64 { s++; return s }
	for b := 0; b < cfg.L; b++ {
		bw := &BlockWeights{
			WQ: tensor.Random(cfg.E, cfg.P, scale, next()),
			WK: tensor.Random(cfg.E, cfg.KVDim(), scale, next()),
			WV: tensor.Random(cfg.E, cfg.KVDim(), scale, next()),
			WO: tensor.Random(cfg.P, cfg.E, scale, next()),
			W1: tensor.Random(cfg.E, cfg.F, scale, next()),
			W2: tensor.Random(cfg.F, cfg.E, scale, next()),
		}
		if cfg.FFN == FFNGated {
			bw.W3 = tensor.Random(cfg.E, cfg.F, scale, next())
		}
		bw.Norm1Gain = ones(cfg.E)
		bw.Norm2Gain = ones(cfg.E)
		if cfg.Norm == LayerNorm {
			bw.Norm1Bias = smallVec(cfg.E, next())
			bw.Norm2Bias = smallVec(cfg.E, next())
			bw.BQ = smallVec(cfg.P, next())
			bw.BK = smallVec(cfg.KVDim(), next())
			bw.BV = smallVec(cfg.KVDim(), next())
			bw.BO = smallVec(cfg.E, next())
			bw.B1 = smallVec(cfg.F, next())
			bw.B2 = smallVec(cfg.E, next())
		}
		w.Blocks[b] = bw
	}
	return w
}

// HasBiases reports whether the linear layers carry bias vectors.
func (b *BlockWeights) HasBiases() bool { return b.BQ != nil }

func ones(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func smallVec(n int, seed int64) []float32 {
	m := tensor.Random(1, n, 0.02, seed)
	return m.Data
}
