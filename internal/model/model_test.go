package model

import (
	"math"
	"testing"

	"mcudist/internal/tensor"
)

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{TinyLlama42M(), TinyLlamaScaled64(), MobileBERT512()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestTinyLlamaMatchesPaperGeometry(t *testing.T) {
	cfg := TinyLlama42M()
	if cfg.E != 512 || cfg.F != 2048 || cfg.L != 8 || cfg.H != 8 {
		t.Fatalf("geometry %+v does not match the paper (E=512,F=2048,L=8,H=8)", cfg)
	}
	// 4·E·P + 2·E·F = 3 MiB of int8 weights per block.
	if got := cfg.BlockWeightBytes(); got != 3*1024*1024 {
		t.Fatalf("block weight bytes = %d, want 3 MiB", got)
	}
	if got := cfg.TotalWeightBytes(); got != 24*1024*1024 {
		t.Fatalf("total weight bytes = %d, want 24 MiB", got)
	}
}

func TestScaledModelKeepsByteSizes(t *testing.T) {
	base, scaled := TinyLlama42M(), TinyLlamaScaled64()
	if scaled.H != 64 {
		t.Fatalf("scaled heads = %d, want 64", scaled.H)
	}
	if base.BlockWeightBytes() != scaled.BlockWeightBytes() {
		t.Fatal("scaling head count changed weight bytes; paper keeps other parameters constant")
	}
	if scaled.HeadDim() != 8 {
		t.Fatalf("scaled head dim = %d, want 8", scaled.HeadDim())
	}
}

func TestMobileBERTGeometry(t *testing.T) {
	cfg := MobileBERT512()
	if cfg.E != 512 || cfg.F != 512 || cfg.H != 4 {
		t.Fatalf("geometry %+v does not match the paper (E=F=512,H=4)", cfg)
	}
	if got := cfg.BlockWeightBytes(); got != 1536*1024 {
		t.Fatalf("block weight bytes = %d, want 1.5 MiB", got)
	}
	if PaperSeqLen(cfg, Prompt) != 268 {
		t.Fatal("MobileBERT paper sequence length is 268")
	}
}

func TestPaperSeqLens(t *testing.T) {
	ll := TinyLlama42M()
	if PaperSeqLen(ll, Autoregressive) != 128 {
		t.Error("TinyLlama AR seq len should be 128")
	}
	if PaperSeqLen(ll, Prompt) != 16 {
		t.Error("TinyLlama prompt seq len should be 16")
	}
}

func TestKVBytes(t *testing.T) {
	cfg := TinyLlama42M()
	// 2 × S × P int8 per block.
	if got := cfg.KVBytesPerBlock(128); got != 2*128*512 {
		t.Fatalf("KV bytes per block = %d", got)
	}
	if got := cfg.KVBytesTotal(128); got != 8*2*128*512 {
		t.Fatalf("KV bytes total = %d", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.E = 0 },
		func(c *Config) { c.H = 3 },   // P % H != 0
		func(c *Config) { c.P = 500 }, // not divisible by 8 heads
		func(c *Config) { c.WeightBytes = 0 },
		func(c *Config) { c.NormEps = 0 },
		func(c *Config) { c.RoPETheta = 0 },
	}
	for i, mut := range bad {
		cfg := TinyLlama42M()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestWeightsShapes(t *testing.T) {
	cfg := TinyLlama42M()
	cfg.L = 2
	w := NewWeights(cfg, 1)
	if len(w.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(w.Blocks))
	}
	b := w.Blocks[0]
	if b.WQ.Rows != cfg.E || b.WQ.Cols != cfg.P {
		t.Fatal("WQ shape wrong")
	}
	if b.WO.Rows != cfg.P || b.WO.Cols != cfg.E {
		t.Fatal("WO shape wrong")
	}
	if b.W1.Cols != cfg.F || b.W2.Rows != cfg.F {
		t.Fatal("FFN shapes wrong")
	}
	if b.W3 != nil {
		t.Fatal("GELU FFN should have no gate matrix")
	}
	if b.HasBiases() {
		t.Fatal("RMSNorm model should not carry biases")
	}
}

func TestEncoderWeightsHaveBiases(t *testing.T) {
	cfg := MobileBERT512()
	cfg.L = 1
	w := NewWeights(cfg, 2)
	if !w.Blocks[0].HasBiases() {
		t.Fatal("LayerNorm model should carry biases")
	}
	if len(w.Blocks[0].B1) != cfg.F || len(w.Blocks[0].BO) != cfg.E {
		t.Fatal("bias lengths wrong")
	}
}

func TestGatedWeightsHaveGate(t *testing.T) {
	cfg := TinyLlama42M()
	cfg.FFN = FFNGated
	cfg.L = 1
	w := NewWeights(cfg, 3)
	if w.Blocks[0].W3 == nil {
		t.Fatal("gated FFN missing W3")
	}
}

func TestWeightsDeterministic(t *testing.T) {
	cfg := TinyLlama42M()
	cfg.L = 1
	a := NewWeights(cfg, 7)
	b := NewWeights(cfg, 7)
	if tensor.MaxAbsDiff(a.Blocks[0].WQ, b.Blocks[0].WQ) != 0 {
		t.Fatal("same seed gave different weights")
	}
	c := NewWeights(cfg, 8)
	if tensor.MaxAbsDiff(a.Blocks[0].WQ, c.Blocks[0].WQ) == 0 {
		t.Fatal("different seeds gave identical weights")
	}
}

// smallCfg returns a miniature decoder for fast functional tests.
func smallCfg() Config {
	return Config{
		Name: "test-decoder", Arch: Decoder,
		E: 32, P: 32, H: 4, F: 64, L: 2,
		Norm: RMSNorm, FFN: FFNGELU,
		RoPE: true, RoPETheta: 10000, NormEps: 1e-5,
		WeightBytes: 1, ActBytes: 1, AccBytes: 4, ReduceBytes: 1,
	}
}

func TestForwardShapes(t *testing.T) {
	cfg := smallCfg()
	w := NewWeights(cfg, 1)
	x := tensor.Random(5, cfg.E, 1, 2)
	out := Forward(w, x, nil)
	if out.Rows != 5 || out.Cols != cfg.E {
		t.Fatalf("output shape %dx%d", out.Rows, out.Cols)
	}
}

func TestForwardDeterministic(t *testing.T) {
	cfg := smallCfg()
	w := NewWeights(cfg, 1)
	x := tensor.Random(4, cfg.E, 1, 2)
	a := Forward(w, x, nil)
	b := Forward(w, x, nil)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("forward is not deterministic")
	}
}

// The central KV-cache correctness property: processing a prompt and
// then stepping token-by-token must equal processing the whole
// sequence at once (last row).
func TestAutoregressiveMatchesPrompt(t *testing.T) {
	cfg := smallCfg()
	w := NewWeights(cfg, 5)
	const s = 6
	x := tensor.Random(s, cfg.E, 1, 9)

	full := Forward(w, x, nil)

	cache := NewKVCache(cfg)
	var last *tensor.Mat
	for i := 0; i < s; i++ {
		row := x.SliceRows(i, i+1)
		if i == 0 {
			last = Forward(w, row, cache)
		} else {
			last = ForwardStep(w, row, cache)
		}
	}
	if cache.Len() != s {
		t.Fatalf("cache length %d, want %d", cache.Len(), s)
	}
	fullLast := full.SliceRows(s-1, s)
	if d := tensor.MaxAbsDiff(fullLast, last); d > 1e-4 {
		t.Fatalf("AR output differs from prompt output by %g", d)
	}
}

// Prefill with a multi-token prompt, then continue stepping.
func TestPrefillThenStep(t *testing.T) {
	cfg := smallCfg()
	w := NewWeights(cfg, 6)
	const s = 5
	x := tensor.Random(s, cfg.E, 1, 10)

	full := Forward(w, x, nil)

	cache := NewKVCache(cfg)
	Forward(w, x.SliceRows(0, s-1), cache)
	last := ForwardStep(w, x.SliceRows(s-1, s), cache)
	if d := tensor.MaxAbsDiff(full.SliceRows(s-1, s), last); d > 1e-4 {
		t.Fatalf("prefill+step differs from full prompt by %g", d)
	}
}

// Causality: future tokens must not influence earlier outputs.
func TestDecoderCausality(t *testing.T) {
	cfg := smallCfg()
	w := NewWeights(cfg, 7)
	x := tensor.Random(6, cfg.E, 1, 11)
	full := Forward(w, x, nil)

	y := x.Clone()
	// Perturb the last token only.
	for i := range y.Row(5) {
		y.Row(5)[i] += 1
	}
	pert := Forward(w, y, nil)
	if d := tensor.MaxAbsDiff(full.SliceRows(0, 5), pert.SliceRows(0, 5)); d != 0 {
		t.Fatalf("future token affected past outputs by %g", d)
	}
	if tensor.MaxAbsDiff(full.SliceRows(5, 6), pert.SliceRows(5, 6)) == 0 {
		t.Fatal("perturbation had no effect at its own position")
	}
}

// Encoders are bidirectional: perturbing the last token must change
// earlier outputs.
func TestEncoderBidirectional(t *testing.T) {
	cfg := MobileBERT512()
	cfg.L = 1
	cfg.E, cfg.P, cfg.F = 32, 32, 32
	cfg.H = 4
	w := NewWeights(cfg, 8)
	x := tensor.Random(4, cfg.E, 1, 12)
	a := Forward(w, x, nil)
	y := x.Clone()
	for i := range y.Row(3) {
		y.Row(3)[i] += 1
	}
	b := Forward(w, y, nil)
	if tensor.MaxAbsDiff(a.SliceRows(0, 3), b.SliceRows(0, 3)) == 0 {
		t.Fatal("encoder attention is not bidirectional")
	}
}

func TestGatedFFNForwardDiffers(t *testing.T) {
	cfg := smallCfg()
	w1 := NewWeights(cfg, 9)
	cfg2 := cfg
	cfg2.FFN = FFNGated
	w2 := NewWeights(cfg2, 9)
	x := tensor.Random(3, cfg.E, 1, 13)
	a := Forward(w1, x, nil)
	b := Forward(w2, x, nil)
	if tensor.MaxAbsDiff(a, b) == 0 {
		t.Fatal("gated and GELU FFN gave identical outputs")
	}
	if b.Rows != 3 || b.Cols != cfg.E {
		t.Fatal("gated forward shape wrong")
	}
}

func TestForwardRejectsBadInput(t *testing.T) {
	cfg := smallCfg()
	w := NewWeights(cfg, 1)
	defer func() {
		if recover() == nil {
			t.Error("wrong input width did not panic")
		}
	}()
	Forward(w, tensor.Random(3, cfg.E+1, 1, 1), nil)
}

func TestForwardStepRequiresCache(t *testing.T) {
	cfg := smallCfg()
	w := NewWeights(cfg, 1)
	defer func() {
		if recover() == nil {
			t.Error("nil cache did not panic")
		}
	}()
	ForwardStep(w, tensor.Random(1, cfg.E, 1, 1), nil)
}

func TestEncoderRejectsCache(t *testing.T) {
	cfg := MobileBERT512()
	cfg.L = 1
	cfg.E, cfg.P, cfg.F, cfg.H = 16, 16, 16, 2
	w := NewWeights(cfg, 1)
	defer func() {
		if recover() == nil {
			t.Error("encoder with cache did not panic")
		}
	}()
	Forward(w, tensor.Random(2, cfg.E, 1, 1), NewKVCache(cfg))
}

func TestOutputsAreFinite(t *testing.T) {
	cfg := smallCfg()
	w := NewWeights(cfg, 14)
	x := tensor.Random(8, cfg.E, 2, 15)
	out := Forward(w, x, nil)
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite output")
		}
	}
}

func BenchmarkForwardPrompt(b *testing.B) {
	cfg := smallCfg()
	w := NewWeights(cfg, 1)
	x := tensor.Random(16, cfg.E, 1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward(w, x, nil)
	}
}

func BenchmarkForwardStep(b *testing.B) {
	cfg := smallCfg()
	w := NewWeights(cfg, 1)
	cache := NewKVCache(cfg)
	Forward(w, tensor.Random(8, cfg.E, 1, 2), cache)
	x := tensor.Random(1, cfg.E, 1, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Rebuild a bounded cache so the benchmark stays stationary.
		if cache.Len() > 64 {
			cache = NewKVCache(cfg)
			Forward(w, tensor.Random(8, cfg.E, 1, 2), cache)
		}
		ForwardStep(w, x, cache)
	}
}
