package model

import (
	"fmt"
	"math"

	"mcudist/internal/tensor"
)

// KVCache stores per-block key/value projections of already-processed
// positions, the data structure that makes autoregressive decoding
// avoid recomputation.
type KVCache struct {
	K []*tensor.Mat // per block, rows = cached positions, cols = P
	V []*tensor.Mat
}

// NewKVCache returns an empty cache for cfg. With GQA, the cached
// rows are KVDim wide (one slice per KV head).
func NewKVCache(cfg Config) *KVCache {
	c := &KVCache{K: make([]*tensor.Mat, cfg.L), V: make([]*tensor.Mat, cfg.L)}
	for i := 0; i < cfg.L; i++ {
		c.K[i] = tensor.New(0, cfg.KVDim())
		c.V[i] = tensor.New(0, cfg.KVDim())
	}
	return c
}

// Len returns the number of cached positions.
func (c *KVCache) Len() int {
	if len(c.K) == 0 {
		return 0
	}
	return c.K[0].Rows
}

func (c *KVCache) append(block int, k, v *tensor.Mat) {
	c.K[block] = tensor.ConcatRows(c.K[block], k)
	c.V[block] = tensor.ConcatRows(c.V[block], v)
}

// Forward runs the reference prompt-mode forward pass over input x
// (S×E): causal attention for decoders, bidirectional for encoders.
// If cache is non-nil (decoders only) the projected keys/values are
// appended so that generation can continue autoregressively.
func Forward(w *Weights, x *tensor.Mat, cache *KVCache) *tensor.Mat {
	cfg := w.Config
	if x.Cols != cfg.E {
		panic(fmt.Sprintf("model: input width %d != E %d", x.Cols, cfg.E))
	}
	if cache != nil && cache.Len() != 0 {
		panic("model: prompt forward requires an empty cache")
	}
	if cache != nil && cfg.Arch != Decoder {
		panic("model: KV cache is a decoder feature")
	}
	out := x.Clone()
	startPos := 0
	for b := 0; b < cfg.L; b++ {
		out = blockForward(cfg, w.Blocks[b], out, blockCacheRef(cache, b), startPos)
	}
	return out
}

// ForwardStep runs one autoregressive step: x is 1×E (the embedding of
// the newest token), cache holds all previous positions and is
// extended in place. Decoders only.
func ForwardStep(w *Weights, x *tensor.Mat, cache *KVCache) *tensor.Mat {
	cfg := w.Config
	if cfg.Arch != Decoder {
		panic("model: autoregressive mode requires a decoder")
	}
	if x.Rows != 1 || x.Cols != cfg.E {
		panic(fmt.Sprintf("model: step input must be 1x%d, got %dx%d", cfg.E, x.Rows, x.Cols))
	}
	if cache == nil {
		panic("model: autoregressive step requires a cache")
	}
	out := x.Clone()
	startPos := cache.Len()
	for b := 0; b < cfg.L; b++ {
		out = blockForward(cfg, w.Blocks[b], out, blockCacheRef(cache, b), startPos)
	}
	return out
}

type cacheRef struct {
	cache *KVCache
	block int
}

func blockCacheRef(c *KVCache, block int) *cacheRef {
	if c == nil {
		return nil
	}
	return &cacheRef{cache: c, block: block}
}

// blockForward applies one transformer block. For decoders the block
// is pre-norm (Llama style); for encoders post-norm (BERT style). In
// both cases the dataflow matches the paper's Fig. 3: MHSA, residual,
// norm, FC, residual, norm — with the two residuals merged into what
// the distributed version realizes as all-reduces.
func blockForward(cfg Config, bw *BlockWeights, x *tensor.Mat, cr *cacheRef, startPos int) *tensor.Mat {
	if cfg.Arch == Decoder {
		h := normalize(cfg, x, bw.Norm1Gain, bw.Norm1Bias)
		att := attention(cfg, bw, h, cr, startPos)
		x = tensor.Add(x, att)
		h2 := normalize(cfg, x, bw.Norm2Gain, bw.Norm2Bias)
		f := ffn(cfg, bw, h2)
		return tensor.Add(x, f)
	}
	att := attention(cfg, bw, x, cr, startPos)
	x = normalize(cfg, tensor.Add(x, att), bw.Norm1Gain, bw.Norm1Bias)
	f := ffn(cfg, bw, x)
	return normalize(cfg, tensor.Add(x, f), bw.Norm2Gain, bw.Norm2Bias)
}

func normalize(cfg Config, x *tensor.Mat, gain, bias []float32) *tensor.Mat {
	if cfg.Norm == LayerNorm {
		return tensor.LayerNorm(x, gain, bias, cfg.NormEps)
	}
	return tensor.RMSNorm(x, gain, cfg.NormEps)
}

// attention computes multi-head attention for the rows of h. With a
// cache, new keys/values are appended first and attention runs over
// the full cached sequence; without one, keys/values come from h
// itself (causal for decoders in prompt mode).
func attention(cfg Config, bw *BlockWeights, h *tensor.Mat, cr *cacheRef, startPos int) *tensor.Mat {
	q := tensor.MatMul(h, bw.WQ)
	k := tensor.MatMul(h, bw.WK)
	v := tensor.MatMul(h, bw.WV)
	addBias(q, bw.BQ)
	addBias(k, bw.BK)
	addBias(v, bw.BV)

	if cfg.RoPE {
		positions := make([]int, h.Rows)
		for i := range positions {
			positions[i] = startPos + i
		}
		tensor.RoPE(q, cfg.HeadDim(), positions, cfg.RoPETheta)
		tensor.RoPE(k, cfg.HeadDim(), positions, cfg.RoPETheta)
	}

	keys, values := k, v
	if cr != nil {
		cr.cache.append(cr.block, k, v)
		keys = cr.cache.K[cr.block]
		values = cr.cache.V[cr.block]
	}

	hd := cfg.HeadDim()
	group := cfg.QueryGroupSize()
	outHeads := make([]*tensor.Mat, cfg.H)
	scale := float32(1 / math.Sqrt(float64(hd)))
	for head := 0; head < cfg.H; head++ {
		qh := q.SliceCols(head*hd, (head+1)*hd)
		kvHead := head / group
		kh := keys.SliceCols(kvHead*hd, (kvHead+1)*hd)
		vh := values.SliceCols(kvHead*hd, (kvHead+1)*hd)
		scores := tensor.MatMulT(qh, kh).Scale(scale)
		if cfg.Arch == Decoder {
			tensor.CausalMaskedSoftmax(scores, startPos)
		} else {
			tensor.Softmax(scores)
		}
		outHeads[head] = tensor.MatMul(scores, vh)
	}
	att := tensor.MatMul(tensor.ConcatCols(outHeads...), bw.WO)
	addBias(att, bw.BO)
	return att
}

func ffn(cfg Config, bw *BlockWeights, h *tensor.Mat) *tensor.Mat {
	if cfg.FFN == FFNGated {
		gate := tensor.SiLU(tensor.MatMul(h, bw.W1))
		up := tensor.MatMul(h, bw.W3)
		out := tensor.MatMul(tensor.Mul(gate, up), bw.W2)
		addBias(out, bw.B2)
		return out
	}
	mid := tensor.MatMul(h, bw.W1)
	addBias(mid, bw.B1)
	tensor.GELU(mid)
	out := tensor.MatMul(mid, bw.W2)
	addBias(out, bw.B2)
	return out
}

func addBias(m *tensor.Mat, bias []float32) {
	if bias == nil {
		return
	}
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("model: bias length %d != cols %d", len(bias), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := range row {
			row[i] += bias[i]
		}
	}
}
