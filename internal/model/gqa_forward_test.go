package model

import (
	"testing"

	"mcudist/internal/tensor"
)

func gqaTestCfg() Config {
	return Config{
		Name: "gqa-forward", Arch: Decoder,
		E: 32, P: 64, H: 8, KVHeads: 2, F: 48, L: 2,
		Norm: RMSNorm, FFN: FFNGELU,
		RoPE: true, RoPETheta: 10000, NormEps: 1e-5,
		WeightBytes: 1, ActBytes: 1, AccBytes: 4, ReduceBytes: 1,
	}
}

func TestSmolLMPreset(t *testing.T) {
	cfg := SmolLM135M()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.KVHeadCount() != 3 || cfg.QueryGroupSize() != 3 {
		t.Fatalf("kv heads %d group %d, want 3/3", cfg.KVHeadCount(), cfg.QueryGroupSize())
	}
	if cfg.HeadDim() != 64 {
		t.Fatalf("head dim %d, want 64", cfg.HeadDim())
	}
	if cfg.KVDim() != 192 {
		t.Fatalf("KV dim %d, want 192", cfg.KVDim())
	}
}

func TestGQAConfigHelpers(t *testing.T) {
	cfg := gqaTestCfg()
	if cfg.KVHeadCount() != 2 || cfg.KVDim() != 16 || cfg.QueryGroupSize() != 4 {
		t.Fatalf("helpers: kv=%d kvdim=%d group=%d", cfg.KVHeadCount(), cfg.KVDim(), cfg.QueryGroupSize())
	}
	mha := cfg
	mha.KVHeads = 0
	if mha.KVHeadCount() != cfg.H || mha.KVDim() != cfg.P || mha.QueryGroupSize() != 1 {
		t.Fatal("zero KVHeads should mean full MHA")
	}
}

func TestGQAValidation(t *testing.T) {
	cfg := gqaTestCfg()
	cfg.KVHeads = 3 // 8 % 3 != 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("indivisible KV heads accepted")
	}
	cfg.KVHeads = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative KV heads accepted")
	}
}

func TestGQAWeightShapes(t *testing.T) {
	cfg := gqaTestCfg()
	w := NewWeights(cfg, 1)
	b := w.Blocks[0]
	if b.WQ.Cols != cfg.P {
		t.Fatalf("WQ cols %d", b.WQ.Cols)
	}
	if b.WK.Cols != cfg.KVDim() || b.WV.Cols != cfg.KVDim() {
		t.Fatalf("WK/WV cols %d/%d, want %d", b.WK.Cols, b.WV.Cols, cfg.KVDim())
	}
}

func TestGQAForwardRuns(t *testing.T) {
	cfg := gqaTestCfg()
	w := NewWeights(cfg, 2)
	x := tensor.Random(5, cfg.E, 1, 3)
	out := Forward(w, x, nil)
	if out.Rows != 5 || out.Cols != cfg.E {
		t.Fatal("GQA forward shape wrong")
	}
}

func TestGQAAutoregressiveMatchesPrompt(t *testing.T) {
	cfg := gqaTestCfg()
	w := NewWeights(cfg, 4)
	const s = 5
	x := tensor.Random(s, cfg.E, 1, 5)
	full := Forward(w, x, nil)

	cache := NewKVCache(cfg)
	if cache.K[0].Cols != cfg.KVDim() {
		t.Fatalf("cache width %d, want %d", cache.K[0].Cols, cfg.KVDim())
	}
	var last *tensor.Mat
	for i := 0; i < s; i++ {
		row := x.SliceRows(i, i+1)
		if i == 0 {
			last = Forward(w, row, cache)
		} else {
			last = ForwardStep(w, row, cache)
		}
	}
	if d := tensor.MaxAbsDiff(full.SliceRows(s-1, s), last); d > 1e-4 {
		t.Fatalf("GQA AR differs from prompt by %g", d)
	}
}

func TestGQACausality(t *testing.T) {
	cfg := gqaTestCfg()
	w := NewWeights(cfg, 6)
	x := tensor.Random(4, cfg.E, 1, 7)
	a := Forward(w, x, nil)
	y := x.Clone()
	for i := range y.Row(3) {
		y.Row(3)[i] += 1
	}
	b := Forward(w, y, nil)
	if tensor.MaxAbsDiff(a.SliceRows(0, 3), b.SliceRows(0, 3)) != 0 {
		t.Fatal("GQA attention leaked future information")
	}
}

func TestGQASharedKVHeadsActuallyShared(t *testing.T) {
	// With one KV head shared by all queries, every query head must
	// attend over the SAME keys: verify by checking that a model with
	// KVHeads=1 gives different results from KVHeads=H (different
	// functions), while both remain valid.
	base := gqaTestCfg()
	one := base
	one.KVHeads = 1
	w1 := NewWeights(one, 8)
	full := base
	full.KVHeads = 0
	w2 := NewWeights(full, 8)
	x := tensor.Random(3, base.E, 1, 9)
	a := Forward(w1, x, nil)
	b := Forward(w2, x, nil)
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatal("shape mismatch")
	}
	// The K/V weight shapes differ, so identical outputs would
	// indicate the GQA path is ignored.
	if tensor.MaxAbsDiff(a, b) == 0 {
		t.Fatal("KVHeads=1 and full MHA produced identical outputs")
	}
}
