package mcudist

import (
	"strings"
	"testing"
)

// Facade-level tests: the public API exercised exactly as README and
// the examples present it.

func TestFacadeRun(t *testing.T) {
	rep, err := Run(DefaultSystem(8), Workload{Model: TinyLlama42M(), Mode: Autoregressive})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles <= 0 {
		t.Fatal("no runtime")
	}
	if rep.Tier != TierDoubleBuffered {
		t.Fatalf("tier %v", rep.Tier)
	}
}

func TestFacadeSweepAndSpeedup(t *testing.T) {
	reports, err := Sweep(DefaultSystem(1), Workload{Model: TinyLlama42M(), Mode: Autoregressive}, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s := Speedup(reports[0], reports[1]); s <= 8 {
		t.Fatalf("speedup %g not super-linear", s)
	}
}

func TestFacadeModels(t *testing.T) {
	for _, cfg := range []Config{TinyLlama42M(), TinyLlamaScaled64(), MobileBERT512()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if PaperSeqLen(TinyLlama42M(), Prompt) != 16 {
		t.Error("paper prompt length wrong")
	}
}

func TestFacadeNumericPath(t *testing.T) {
	cfg := TinyLlama42M()
	cfg.L = 1
	cfg.E, cfg.P, cfg.F, cfg.H = 32, 32, 64, 4
	w := NewWeights(cfg, 1)
	x := RandomInput(cfg, 3, 2)
	ref := Forward(w, x, nil)

	plan, err := NewPlan(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := NewExecutor(w, plan)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(ref, exec.Forward(x)); d > 1e-4 {
		t.Fatalf("distributed differs by %g", d)
	}
}

func TestFacadeKVCacheGeneration(t *testing.T) {
	cfg := TinyLlama42M()
	cfg.L = 1
	cfg.E, cfg.P, cfg.F, cfg.H = 32, 32, 64, 4
	w := NewWeights(cfg, 3)
	cache := NewKVCache(cfg)
	Forward(w, RandomInput(cfg, 4, 4), cache)
	out := ForwardStep(w, RandomInput(cfg, 1, 5), cache)
	if out.Rows != 1 || out.Cols != cfg.E {
		t.Fatal("step output shape wrong")
	}
}

func TestFacadeStrategies(t *testing.T) {
	for _, strat := range []Strategy{TensorParallel, Replicated, Pipeline} {
		sys := DefaultSystem(4)
		sys.Strategy = strat
		if _, err := Run(sys, Workload{Model: TinyLlama42M(), Mode: Prompt}); err != nil {
			t.Errorf("%v: %v", strat, err)
		}
	}
}

func TestFacadeSiracusaParams(t *testing.T) {
	p := Siracusa()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Chip.Cores != 8 {
		t.Fatal("not the paper's chip")
	}
}

func TestFacadeGeneration(t *testing.T) {
	g, err := RunGeneration(DefaultSystem(8), TinyLlama42M(), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.TimeToFirstTokenSeconds <= 0 || g.TokensPerSecond <= 0 {
		t.Fatal("generation metrics missing")
	}
}

func TestFacadeExplore(t *testing.T) {
	wl := Workload{Model: TinyLlama42M(), Mode: Autoregressive}
	pt, err := MinChipsOffChipFree(DefaultSystem(1), wl, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Report.Tier.OffChipFree() {
		t.Fatal("explorer returned a non-off-chip-free point")
	}
	counts := LegalChipCounts(TinyLlama42M(), 100)
	if len(counts) != 8 {
		t.Fatalf("legal counts = %v", counts)
	}
	points, err := Frontier(DefaultSystem(1), wl, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatal("frontier incomplete")
	}
}

func TestFacadeGQAPreset(t *testing.T) {
	cfg := SmolLM135M()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(DefaultSystem(3), Workload{Model: cfg, Mode: Autoregressive}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(DefaultSystem(4), Workload{Model: cfg, Mode: Autoregressive}); err == nil {
		t.Fatal("4 chips on 3 KV heads accepted")
	}
}

func TestFacadeSyncPlan(t *testing.T) {
	plan, err := ParsePlan("prefill=ring,decode=tree")
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.String(); got != "prefill=ring,decode=tree" {
		t.Fatalf("plan prints %q", got)
	}
	if len(SyncClasses()) != 6 {
		t.Fatalf("%d sync classes", len(SyncClasses()))
	}
	if topo, ok := UniformPlan(TopologyRing).Explicit(SyncDecodeFFN); !ok || topo != TopologyRing {
		t.Fatal("uniform plan does not bind every class")
	}

	sys := DefaultSystem(8)
	sys.Options.SyncPlan = plan
	wl := Workload{Model: TinyLlama42M(), Mode: Prompt}
	rep, err := Run(sys, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ByClass) != 2 || rep.ByClass[0].Class != SyncPrefillMHSA {
		t.Fatalf("report classes = %v", rep.ByClass)
	}
	if rep.ByClass[0].Topology != TopologyRing {
		t.Fatalf("prefill ran on %s, want ring", rep.ByClass[0].Topology)
	}
	if len(rep.C2CEnergyByClass) != 2 {
		t.Fatal("per-class energy split missing")
	}

	res, err := AutotunePlan(DefaultSystem(8), wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Margin < 1 || len(res.PerClass) != 2 {
		t.Fatalf("autotune margin %g, %d classes", res.Margin, len(res.PerClass))
	}
}

func TestFacadeResilience(t *testing.T) {
	faults, err := ParseFaults("drop:3,slow:0-1x10,straggle:2x2")
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 3 || faults[0].Kind != FaultDropChip {
		t.Fatalf("parsed faults = %v", faults)
	}
	if got := FaultsString(faults); got != "drop:3,slow:0-1x10,straggle:2x2" {
		t.Fatalf("faults round-trip to %q", got)
	}

	sys := DefaultSystem(8)
	deg, remap, err := Degrade(sys, TinyLlama42M(), DropChip(3))
	if err != nil {
		t.Fatal(err)
	}
	if deg.Chips != 7 || len(remap) != 8 || remap[3] != -1 {
		t.Fatalf("degrade: chips=%d remap=%v", deg.Chips, remap)
	}
	if deg.HW.Network == sys.HW.Network {
		t.Fatal("degraded network shares the pristine digest")
	}

	torus, err := TorusNetwork(4, 2, MIPI())
	if err != nil {
		t.Fatal(err)
	}
	nl, err := NetlistFromNetwork(torus, 8)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseNetlist(strings.NewReader(nl.Format()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Chips != 8 || len(back.Edges) != len(nl.Edges) {
		t.Fatalf("netlist round-trip: chips=%d links=%d/%d", back.Chips, len(back.Edges), len(nl.Edges))
	}

	study, err := ReplanStudy(sys, TinyLlama42M(), []Fault{SlowEdge(0, 1, 10)}, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if study.Replan.MarginCycles < 1 {
		t.Fatalf("resilience margin %g < 1", study.Replan.MarginCycles)
	}
}
